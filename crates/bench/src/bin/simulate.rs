//! A generic command-line driver for the simulator: pick a system, scheme,
//! traffic pattern, load and duration; get latency/throughput/recovery
//! statistics (and optionally an occupancy SVG).
//!
//! ```text
//! simulate --scheme upp --pattern uniform_random --rate 0.08 --cycles 50000
//! simulate --scheme none --rate 0.2 --svg wedge.svg     # watch it deadlock
//! simulate --system large --scheme composable --vcs 4
//! ```

use std::process::exit;
use upp_core::UppConfig;
use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_noc::topology::{ChipletSystemSpec, SystemKind};
use upp_noc::viz::topology_svg;
use upp_workloads::runner::{build_system, SchemeKind};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

struct Args {
    system: SystemKind,
    scheme: SchemeKind,
    pattern: Pattern,
    rate: f64,
    cycles: u64,
    vcs: usize,
    faults: usize,
    seed: u64,
    threshold: u64,
    svg: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate [options]\n\
         --system baseline|large|b2|b8       (default baseline)\n\
         --scheme upp|composable|remote|none (default upp)\n\
         --pattern uniform_random|bit_complement|bit_rotation|transpose|hotspot|neighbor\n\
         --rate FLOAT                        offered flits/cycle/node (default 0.05)\n\
         --cycles N                          traffic cycles (default 50000)\n\
         --vcs N                             VCs per VNet (default 1)\n\
         --faults N                          random faulty links (default 0)\n\
         --threshold N                       UPP detection threshold (default 20)\n\
         --seed N                            (default 1)\n\
         --svg PATH                          write final occupancy heat map"
    );
    exit(2);
}

fn parse() -> Args {
    let mut a = Args {
        system: SystemKind::Baseline,
        scheme: SchemeKind::Upp(UppConfig::default()),
        pattern: Pattern::UniformRandom,
        rate: 0.05,
        cycles: 50_000,
        vcs: 1,
        faults: 0,
        seed: 1,
        threshold: 20,
        svg: None,
    };
    let mut scheme_name = "upp".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--system" => {
                a.system = match val().as_str() {
                    "baseline" => SystemKind::Baseline,
                    "large" => SystemKind::Large,
                    "b2" => SystemKind::BoundaryCount(2),
                    "b8" => SystemKind::BoundaryCount(8),
                    _ => usage(),
                }
            }
            "--scheme" => scheme_name = val(),
            "--pattern" => {
                let v = val();
                a.pattern = Pattern::ALL
                    .into_iter()
                    .chain(Pattern::EXTRA)
                    .find(|p| p.label() == v)
                    .unwrap_or_else(|| usage());
            }
            "--rate" => a.rate = val().parse().unwrap_or_else(|_| usage()),
            "--cycles" => a.cycles = val().parse().unwrap_or_else(|_| usage()),
            "--vcs" => a.vcs = val().parse().unwrap_or_else(|_| usage()),
            "--faults" => a.faults = val().parse().unwrap_or_else(|_| usage()),
            "--threshold" => a.threshold = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val().parse().unwrap_or_else(|_| usage()),
            "--svg" => a.svg = Some(val()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    a.scheme = match scheme_name.as_str() {
        "upp" => SchemeKind::Upp(UppConfig::with_threshold(a.threshold)),
        "composable" => SchemeKind::Composable,
        "remote" => SchemeKind::RemoteControl,
        "none" => SchemeKind::None,
        _ => usage(),
    };
    a
}

fn main() {
    let args = parse();
    let spec = ChipletSystemSpec::of_kind(args.system);
    let cfg = NocConfig::default().with_vcs_per_vnet(args.vcs);
    let built = build_system(
        &spec,
        cfg,
        &args.scheme,
        args.faults,
        args.seed,
        ConsumePolicy::Immediate { latency: 1 },
    );
    let mut sys = built.sys;
    let mut traffic =
        SyntheticTraffic::new(sys.net().topo(), args.pattern, args.rate, args.seed);
    eprintln!(
        "system {:?} | scheme {} | pattern {} | rate {} | {} cycles | {} VCs | {} faults",
        args.system,
        args.scheme.label(),
        args.pattern.label(),
        args.rate,
        args.cycles,
        args.vcs,
        args.faults
    );
    for cycle in 0..args.cycles {
        traffic.tick(&mut sys);
        sys.step();
        if sys.net().stalled() {
            eprintln!("network stalled (deadlock) at cycle {cycle}");
            break;
        }
    }
    let outcome = sys.run_until_drained(args.cycles);
    let stats = sys.net().stats();
    let nodes = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .map(|c| c.routers.len())
        .sum::<usize>();
    println!("outcome:            {outcome:?}");
    println!("packets delivered:  {} / {} created", stats.packets_ejected, stats.packets_created);
    println!("flits delivered:    {}", stats.flits_ejected);
    println!("network latency:    {:.2} cycles", stats.avg_net_latency());
    println!("queueing latency:   {:.2} cycles", stats.avg_queue_latency());
    println!("worst latency:      {} cycles", stats.max_latency);
    println!(
        "throughput:         {:.4} flits/cycle/node",
        stats.throughput(sys.net().cycle(), nodes)
    );
    println!("control-signal hops: {}", stats.control_hops);
    println!("bypass (popup) hops: {}", stats.bypass_hops);
    if let Some(h) = &built.upp_stats {
        let s = *h.lock().expect("single-threaded");
        println!(
            "UPP: {} upward packets, {} popups ({} partial), {} stops, {} acks dropped",
            s.upward_packets, s.popups_completed, s.partial_popups, s.stops_sent, s.acks_dropped
        );
        if s.popups_completed > 0 {
            println!("UPP mean recovery:  {:.1} cycles (detection -> delivered)", s.avg_recovery_latency());
        }
    }
    if let Some(path) = args.svg {
        let occ = sys.net().occupancy();
        match std::fs::write(&path, topology_svg(sys.net().topo(), &occ)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
