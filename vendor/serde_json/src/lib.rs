//! Vendored offline stand-in for `serde_json`: renders the serde stub's
//! [`Value`] tree as JSON text and parses JSON text back into a [`Value`].
//! Supports exactly what the workspace calls: [`to_value`], [`to_string`],
//! [`to_string_pretty`], [`from_str`] (to `Value` only — the serde stub has
//! no typed deserialization), and an [`Error`] that converts into
//! `std::io::Error`.

use serde::Serialize;
use std::fmt;

pub use serde::Value;

/// Serialization error (the stub's serializer is infallible in practice,
/// but the signatures mirror the real crate).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in the stub; the `Result` mirrors the real crate's signature.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.ser_value())
}

/// Renders a value as compact JSON.
///
/// # Errors
///
/// Never fails in the stub.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.ser_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in the stub.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.ser_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Numbers without `.`/`e` parse as integers (`U64`, or `I64` when
/// negative); everything else numeric parses as `F64`. This mirrors how the
/// serializer renders, so serialize -> parse -> serialize round-trips
/// byte-identically (the property the sweep journal's resume path relies
/// on).
///
/// # Errors
///
/// Returns `Err` on malformed JSON or trailing non-whitespace input.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos = end;
                            // Surrogate pairs are not produced by the
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape '\\{}'", other as char)));
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xf0 => 4,
                        _ if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|raw| std::str::from_utf8(raw).ok())
                        .ok_or_else(|| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            out.push_str(&n.to_string());
        }
        Value::U64(n) => {
            out.push_str(&n.to_string());
        }
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::String("x\"y".into())),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn parse_round_trips_compact_rendering() {
        let v = Value::Object(vec![
            ("rate".into(), Value::F64(0.06)),
            ("n".into(), Value::U64(3)),
            ("neg".into(), Value::I64(-4)),
            ("ok".into(), Value::Bool(true)),
            ("name".into(), Value::String("x\"y\n".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Null, Value::F64(1.5)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(to_string(&back).unwrap(), text);
    }

    #[test]
    fn parse_handles_whitespace_and_nesting() {
        let v = from_str(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v["a"].as_array().unwrap().len(), 2);
        assert_eq!(v["a"].as_array().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("nope").is_err());
    }

    #[test]
    fn integral_floats_round_trip_through_integer_tokens() {
        // The serializer renders 3.0f64 as "3"; parsing yields U64(3) whose
        // as_f64 recovers 3.0 and whose re-rendering is again "3".
        let text = to_string(&3.0f64).unwrap();
        assert_eq!(text, "3");
        let back = from_str(&text).unwrap();
        assert_eq!(back.as_f64(), Some(3.0));
        assert_eq!(to_string(&back).unwrap(), "3");
    }

    #[test]
    fn error_converts_to_io_error() {
        let io: std::io::Error = Error("x".into()).into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
