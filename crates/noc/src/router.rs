//! The router microarchitecture.
//!
//! Implements the paper's 3-stage pipeline (Fig. 5): buffer write + route
//! computation on arrival, switch allocation + VC selection one cycle later,
//! then switch traversal and link traversal. Wormhole flow control with
//! credit-based backpressure; VCs are grouped into VNets.
//!
//! Beyond the vanilla datapath the router carries the *mechanisms* UPP's and
//! remote control's policies drive:
//!
//! * two dedicated control buffers (`UPP_req`/`UPP_stop` and `UPP_ack`,
//!   Fig. 6) whose messages traverse the pipeline like head flits but win
//!   switch allocation over normal flits;
//! * a circuit table `(VNet, popup destination) -> (in, out)` recorded by
//!   circuit-recording control messages and used by upward flits to bypass
//!   buffers entirely (one ST stage per hop, Sec. V-C);
//! * per-packet popup priority for draining partly-transmitted worms
//!   (Sec. V-B3);
//! * an optional packet-sized side-buffer *absorber* on boundary routers
//!   (remote control's isolation buffers).

use crate::config::NocConfig;
use crate::control::{CircuitEntry, ControlClass, ControlMsg, ControlRoute, DeliveredControl};
use crate::event::Event;
use crate::ids::{Cycle, NodeId, PacketId, Port, VnetId};
use crate::ni::{Ni, OutVcState};
use crate::obs::ObsRegistry;
use crate::packet::{Flit, PacketArena, PacketRef};
use crate::ring::RingBank;
use crate::routing::RouteComputer;
use crate::stats::{NetStats, PacketTracker};
use crate::topology::Topology;
use crate::trace::{BlockReason, TraceEvent, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// A buffered flit with its arrival cycle (flits attend switch allocation
/// from the cycle after arrival).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferedFlit {
    /// The flit.
    pub flit: Flit,
    /// Cycle it was written into the buffer.
    pub arrived: Cycle,
}

/// Control state of one input virtual channel. The buffered flits themselves
/// live in the router's contiguous [`RingBank`] (struct-of-arrays layout),
/// accessed through [`Router::vc_front`]/[`Router::vc_buf_len`].
#[derive(Debug, Clone, Copy, Default)]
pub struct InputVc {
    /// Packet currently owning this VC (set by its head flit's buffer write,
    /// cleared when its tail departs).
    pub owner: Option<PacketId>,
    /// Route-computation result for the owning packet.
    pub route_out: Option<Port>,
    /// Downstream VC allocated on `route_out` (flat index), once the head
    /// flit won switch allocation.
    pub out_vc: Option<usize>,
    /// Frozen VCs are skipped by switch allocation (set while UPP pops the
    /// VC's packet up through the bypass path).
    pub frozen: bool,
}

/// An upward flit waiting in the bypass latch.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BypassFlit {
    flit: Flit,
    in_port: Port,
    out_port: Port,
    arrived: Cycle,
}

/// One packet-sized side-buffer slot of the remote-control absorber.
#[derive(Debug, Clone, Default)]
pub struct AbsorbSlot {
    /// Packet currently stored or streaming in.
    pub packet: Option<PacketId>,
    /// Reservation made by the permission subnetwork before injection.
    pub reserved_for: Option<PacketId>,
    /// Buffered flits.
    pub buf: VecDeque<BufferedFlit>,
    /// Route computed from the head flit for re-injection into the chiplet.
    pub route_out: Option<Port>,
    /// Allocated downstream VC for re-injection.
    pub out_vc: Option<usize>,
}

/// Remote control's boundary-router side buffer: absorbs every packet
/// entering the chiplet so stalled inter-chiplet traffic can never block
/// intra-chiplet traffic.
#[derive(Debug, Clone)]
pub struct Absorber {
    /// The slots (the paper equips each boundary router with four
    /// data-packet-sized buffers).
    pub slots: Vec<AbsorbSlot>,
    rr: usize,
}

impl Absorber {
    /// Creates an absorber with `slots` packet-sized slots.
    pub fn new(slots: usize) -> Self {
        Self {
            slots: vec![AbsorbSlot::default(); slots],
            rr: 0,
        }
    }

    /// Number of slots neither occupied nor reserved.
    pub fn free_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.packet.is_none() && s.reserved_for.is_none())
            .count()
    }

    /// `(occupied_slots, buffered_flits)` across all slots — the absorber's
    /// instantaneous occupancy, for telemetry.
    pub fn occupancy(&self) -> (usize, usize) {
        let occupied = self.slots.iter().filter(|s| s.packet.is_some()).count();
        let flits = self.slots.iter().map(|s| s.buf.len()).sum();
        (occupied, flits)
    }

    /// Reserves a slot for `packet`. Returns false when all slots are taken.
    pub fn reserve(&mut self, packet: PacketId) -> bool {
        if let Some(s) = self
            .slots
            .iter_mut()
            .find(|s| s.packet.is_none() && s.reserved_for.is_none())
        {
            s.reserved_for = Some(packet);
            true
        } else {
            false
        }
    }

    fn accept(&mut self, flit: Flit, id: PacketId, now: Cycle, route_out: Port) {
        if flit.kind.is_head() {
            let idx = self
                .slots
                .iter()
                .position(|s| s.reserved_for == Some(id))
                .or_else(|| {
                    // Unreserved arrivals (e.g. workloads driving the absorber
                    // without a permission scheme) fall back to any free slot.
                    self.slots
                        .iter()
                        .position(|s| s.packet.is_none() && s.reserved_for.is_none())
                })
                .unwrap_or_else(|| panic!("absorber overflow for {id}"));
            let slot = &mut self.slots[idx];
            slot.reserved_for = None;
            slot.packet = Some(id);
            slot.route_out = Some(route_out);
            slot.out_vc = None;
            slot.buf.push_back(BufferedFlit { flit, arrived: now });
        } else {
            let slot = self
                .slots
                .iter_mut()
                .find(|s| s.packet == Some(id))
                .unwrap_or_else(|| panic!("absorber body flit without slot for {id}"));
            slot.buf.push_back(BufferedFlit { flit, arrived: now });
        }
    }
}

/// External references a router needs while processing one cycle.
pub(crate) struct RouterCtx<'a> {
    pub cfg: &'a NocConfig,
    pub topo: &'a Topology,
    pub routing: &'a dyn RouteComputer,
    pub now: Cycle,
    pub ni: &'a mut Ni,
    pub emit: &'a mut Vec<(Cycle, Event)>,
    pub stats: &'a mut NetStats,
    pub tracker: &'a mut PacketTracker,
    pub tracer: &'a mut Tracer,
    pub obs: &'a mut ObsRegistry,
    /// Shared packet-descriptor arena (read-only during router stepping;
    /// descriptors are interned/freed only on the serial path).
    pub arena: &'a PacketArena,
    /// First-touch log of flat `link_flits` indices, armed only when
    /// `stats` is a shard-local delta: the merge step uses it to fold the
    /// per-link counters in O(touched links). `None` on the serial path.
    pub link_log: Option<&'a mut Vec<u32>>,
}

impl RouterCtx<'_> {
    /// Counts one flit leaving `node` through `port`, noting the first
    /// touch of each link when a shard-delta log is armed.
    #[inline]
    pub(crate) fn bump_link(&mut self, node: NodeId, port: Port) {
        if let Some(log) = self.link_log.as_deref_mut() {
            if self.stats.link_flit_count(node, port) == 0 {
                log.push((node.index() * Port::COUNT + port.index()) as u32);
            }
        }
        self.stats.bump_link(node, port);
    }
}

/// One router.
pub struct Router {
    node: NodeId,
    vcs_per_vnet: usize,
    num_vnets: usize,
    /// Flat `port x vc` input VCs, indexed `p.index() * vcs_per_port + vc`.
    /// Absent ports keep (never-touched) default slots; `has_link` gates
    /// every access. The flat layout keeps the per-cycle switch-allocation
    /// scans on one contiguous allocation.
    in_vcs: Vec<InputVc>,
    /// The buffered flits of every input VC, packed into one fixed-capacity
    /// ring bank (same flat indexing as `in_vcs`). Capacity covers the
    /// larger of the credit depth and one whole packet: a popup rejoin can
    /// legally re-buffer a worm past its credit-limited depth.
    bufs: RingBank<BufferedFlit>,
    /// Flat `port x vc` downstream credit/ownership mirrors (same indexing).
    out_vcs: Vec<OutVcState>,
    vcs_per_port: usize,
    has_link: [bool; Port::COUNT],
    /// True when this router's `Local`-like sinks (Local out, or Up out when
    /// the neighbour absorbs) never exert VC backpressure.
    infinite_sink: [bool; Port::COUNT],
    req_buf: VecDeque<(ControlMsg, Port, Cycle)>,
    ack_buf: VecDeque<(ControlMsg, Port, Cycle)>,
    circuits: HashMap<(VnetId, NodeId), CircuitEntry>,
    bypass: VecDeque<BypassFlit>,
    priority_packets: HashSet<PacketId>,
    absorber: Option<Absorber>,
    control_inbox: Vec<DeliveredControl>,
    rr_in: [usize; Port::COUNT],
    rr_out: [usize; Port::COUNT],
    up_last_sent: Vec<Cycle>,
    rng: SmallRng,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("node", &self.node)
            .field("bypass_pending", &self.bypass.len())
            .field("req_buf", &self.req_buf.len())
            .field("ack_buf", &self.ack_buf.len())
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Builds the router for `node`.
    pub fn new(node: NodeId, cfg: &NocConfig, topo: &Topology, seed: u64) -> Self {
        let vcs = cfg.vcs_per_port();
        let mut has_link = [false; Port::COUNT];
        has_link[Port::Local.index()] = true;
        for p in Port::ALL {
            if p != Port::Local && topo.raw_neighbor(node, p).is_some() {
                has_link[p.index()] = true;
            }
        }
        let in_vcs = vec![InputVc::default(); Port::COUNT * vcs];
        let ring_cap = cfg.vc_buffer_depth.max(cfg.max_packet_flits());
        let bufs = RingBank::new(
            Port::COUNT * vcs,
            ring_cap,
            BufferedFlit {
                flit: Flit::new(PacketRef(u32::MAX), 0, 1),
                arrived: 0,
            },
        );
        let mut out_vcs = vec![OutVcState::new(cfg.vc_buffer_depth); Port::COUNT * vcs];
        for f in 0..vcs {
            // Local ejection never exerts VC backpressure.
            out_vcs[Port::Local.index() * vcs + f] = OutVcState::new(usize::MAX / 2);
        }
        let mut infinite_sink = [false; Port::COUNT];
        infinite_sink[Port::Local.index()] = true;
        Self {
            node,
            vcs_per_vnet: cfg.vcs_per_vnet,
            num_vnets: cfg.num_vnets,
            in_vcs,
            bufs,
            out_vcs,
            vcs_per_port: vcs,
            has_link,
            infinite_sink,
            req_buf: VecDeque::new(),
            ack_buf: VecDeque::new(),
            circuits: HashMap::new(),
            bypass: VecDeque::new(),
            priority_packets: HashSet::new(),
            absorber: None,
            control_inbox: Vec::new(),
            rr_in: [0; Port::COUNT],
            rr_out: [0; Port::COUNT],
            up_last_sent: vec![0; cfg.num_vnets],
            rng: SmallRng::seed_from_u64(seed ^ node.0 as u64),
        }
    }

    /// The router's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Installs a remote-control absorber with `slots` packet slots.
    pub fn install_absorber(&mut self, slots: usize) {
        self.absorber = Some(Absorber::new(slots));
    }

    /// Marks the output port `p` as an infinite sink (downstream absorbs
    /// without VC backpressure). Used on interposer routers whose `Up`
    /// neighbour runs an absorber.
    pub fn set_infinite_sink(&mut self, p: Port) {
        self.infinite_sink[p.index()] = true;
        let base = p.index() * self.vcs_per_port;
        for s in &mut self.out_vcs[base..base + self.vcs_per_port] {
            *s = OutVcState::new(usize::MAX / 2);
        }
    }

    /// The absorber, if installed.
    pub fn absorber(&self) -> Option<&Absorber> {
        self.absorber.as_ref()
    }

    /// Mutable absorber access (permission-subnetwork reservations).
    pub fn absorber_mut(&mut self) -> Option<&mut Absorber> {
        self.absorber.as_mut()
    }

    /// Input VC state (read-only introspection for schemes and tests).
    ///
    /// # Panics
    ///
    /// Panics if the port has no link.
    pub fn input_vc(&self, p: Port, vc_flat: usize) -> &InputVc {
        &self.in_vcs[p.index() * self.vcs_per_port + vc_flat]
    }

    /// Buffered-flit occupancy of an input VC.
    pub fn vc_buf_len(&self, p: Port, vc_flat: usize) -> usize {
        self.bufs.len(p.index() * self.vcs_per_port + vc_flat)
    }

    /// True when an input VC holds no buffered flits.
    pub fn vc_buf_is_empty(&self, p: Port, vc_flat: usize) -> bool {
        self.bufs.is_empty(p.index() * self.vcs_per_port + vc_flat)
    }

    /// Oldest buffered flit of an input VC, if any.
    pub fn vc_front(&self, p: Port, vc_flat: usize) -> Option<&BufferedFlit> {
        self.bufs.front(p.index() * self.vcs_per_port + vc_flat)
    }

    /// True if the packet owning VC `(p, vc_flat)` has sent its head flit
    /// downstream but not yet its tail (the worm is partly transmitted).
    pub fn vc_partly_transmitted(&self, p: Port, vc_flat: usize) -> bool {
        let iv = p.index() * self.vcs_per_port + vc_flat;
        let vc = &self.in_vcs[iv];
        vc.owner.is_some()
            && vc.out_vc.is_some()
            && self.bufs.front(iv).is_none_or(|b| !b.flit.kind.is_head())
    }

    /// Downstream credit mirror for an output VC.
    pub fn output_vc(&self, p: Port, vc_flat: usize) -> &OutVcState {
        &self.out_vcs[p.index() * self.vcs_per_port + vc_flat]
    }

    /// True when the router has a link on `p`.
    pub fn has_link(&self, p: Port) -> bool {
        self.has_link[p.index()]
    }

    /// Last cycle any flit departed through the `Up` port for `vnet`.
    pub fn up_last_sent(&self, vnet: VnetId) -> Cycle {
        self.up_last_sent[vnet.index()]
    }

    /// Circuit entry for `(vnet, key)`, if recorded.
    pub fn circuit(&self, vnet: VnetId, key: NodeId) -> Option<CircuitEntry> {
        self.circuits.get(&(vnet, key)).copied()
    }

    /// Removes a circuit entry.
    pub fn clear_circuit(&mut self, vnet: VnetId, key: NodeId) {
        self.circuits.remove(&(vnet, key));
    }

    /// Number of circuit entries currently recorded.
    pub fn circuit_count(&self) -> usize {
        self.circuits.len()
    }

    /// Marks a packet's buffered flits as popup-priority.
    pub fn add_priority_packet(&mut self, p: PacketId) {
        self.priority_packets.insert(p);
    }

    /// Clears a popup-priority mark.
    pub fn remove_priority_packet(&mut self, p: PacketId) {
        self.priority_packets.remove(&p);
    }

    /// True while `p` holds popup priority here.
    pub fn is_priority_packet(&self, p: PacketId) -> bool {
        self.priority_packets.contains(&p)
    }

    /// Freezes or unfreezes an input VC (frozen VCs skip switch allocation;
    /// UPP freezes the VC it pops flits from).
    pub fn set_vc_frozen(&mut self, p: Port, vc_flat: usize, frozen: bool) {
        self.in_vcs[p.index() * self.vcs_per_port + vc_flat].frozen = frozen;
    }

    /// Upward flits currently waiting in the bypass latch.
    pub fn bypass_pending(&self) -> usize {
        self.bypass.len()
    }

    /// Occupancy of the request/stop control buffer.
    pub fn req_buf_len(&self) -> usize {
        self.req_buf.len()
    }

    /// Occupancy of the ack control buffer.
    pub fn ack_buf_len(&self) -> usize {
        self.ack_buf.len()
    }

    /// Drains the router-level control inbox (terminated acks) into `out`,
    /// reusing both buffers' capacity (no per-call allocation).
    pub fn drain_control_inbox_into(&mut self, out: &mut Vec<DeliveredControl>) {
        out.append(&mut self.control_inbox);
    }

    /// True when stepping this router next cycle could possibly do work:
    /// any buffered input-VC flit, a latched bypass flit, a queued control
    /// message, a buffered absorber flit, or an unread control-inbox entry.
    ///
    /// This is the active-set scheduler's wake predicate. It is
    /// deliberately level-based (buffered state, not progress) so a
    /// blocked-but-occupied router stays scheduled until it truly drains;
    /// state that only *enables* progress for already-buffered flits
    /// (credits, circuit entries, priority marks, frozen bits) does not
    /// appear here because it can never create work in an empty router.
    pub fn has_pending_work(&self) -> bool {
        !self.bypass.is_empty()
            || !self.req_buf.is_empty()
            || !self.ack_buf.is_empty()
            || !self.control_inbox.is_empty()
            || self.bufs.any_nonempty()
            || self
                .absorber
                .as_ref()
                .is_some_and(|a| a.slots.iter().any(|s| !s.buf.is_empty()))
    }

    /// Enqueues a locally-originated control message (it attends switch
    /// allocation from the next cycle, like an arriving head flit).
    pub fn send_control(&mut self, msg: ControlMsg, now: Cycle) {
        match msg.class {
            ControlClass::ReqLike => self.req_buf.push_back((msg, Port::Local, now)),
            ControlClass::AckLike => self.ack_buf.push_back((msg, Port::Local, now)),
        }
    }

    // ------------------------------------------------------------ deliveries

    /// Handles an arriving flit (buffer write + route computation).
    pub(crate) fn deliver_flit(
        &mut self,
        ctx: &mut RouterCtx<'_>,
        in_port: Port,
        vc_flat: usize,
        flit: Flit,
    ) {
        if flit.upward {
            self.deliver_upward(ctx, in_port, flit);
            return;
        }
        if in_port == Port::Down {
            if let Some(abs) = &mut self.absorber {
                // Remote control: everything entering the chiplet is absorbed.
                let route_out = if flit.kind.is_head() {
                    let route = ctx.arena.head_desc(&flit).route;
                    ctx.routing.route(ctx.topo, self.node, in_port, &route)
                } else {
                    Port::Local // placeholder; body flits reuse the slot route
                };
                abs.accept(flit, ctx.arena.desc(&flit).id, ctx.now, route_out);
                if ctx.obs.is_enabled() {
                    ctx.obs.inc(ctx.obs.mech.absorber_flits);
                }
                return;
            }
        }
        let iv = in_port.index() * self.vcs_per_port + vc_flat;
        if flit.kind.is_head() {
            let vc = &mut self.in_vcs[iv];
            debug_assert!(
                vc.owner.is_none(),
                "VC collision at {} {in_port}",
                self.node
            );
            let desc = ctx.arena.head_desc(&flit);
            vc.owner = Some(desc.id);
            vc.route_out = Some(ctx.routing.route(ctx.topo, self.node, in_port, &desc.route));
            vc.out_vc = None;
        }
        if self
            .bufs
            .push_back(
                iv,
                BufferedFlit {
                    flit,
                    arrived: ctx.now,
                },
            )
            .is_err()
        {
            panic!(
                "input VC overflow at {} {in_port} vc {vc_flat} (credit protocol violation)",
                self.node
            );
        }
    }

    /// Handles an arriving upward (bypass) flit: either it rejoins its worm
    /// (preserving flit order when popup started mid-packet) or it enters the
    /// bypass latch for single-stage forwarding.
    fn deliver_upward(&mut self, ctx: &mut RouterCtx<'_>, in_port: Port, flit: Flit) {
        // Protocol-state reads (identity, circuit key) are legitimate on any
        // flit of the packet, so this goes through the non-asserting accessor.
        let desc = ctx.arena.desc(&flit);
        let (id, circuit_key) = (desc.id, (desc.vnet, desc.route.dest));
        // Rejoin rule: if this packet still owns an input VC here with
        // buffered flits, append behind them so flits cannot overtake.
        for iv in 0..self.in_vcs.len() {
            if self.in_vcs[iv].owner == Some(id) && !self.bufs.is_empty(iv) {
                let mut f = flit;
                f.upward = false;
                f.popup_priority = true;
                if self
                    .bufs
                    .push_back(
                        iv,
                        BufferedFlit {
                            flit: f,
                            arrived: ctx.now,
                        },
                    )
                    .is_err()
                {
                    panic!("rejoin overflow at {} for {id}", self.node);
                }
                self.priority_packets.insert(id);
                return;
            }
        }
        let out_port = match self.circuits.get(&circuit_key) {
            Some(e) => {
                if ctx.obs.is_enabled() {
                    ctx.obs.inc(ctx.obs.mech.circuit_lookup_hits);
                }
                e.out_port
            }
            None => {
                // No circuit: the req has not passed here. This can only be a
                // protocol bug; route it like a normal flit to stay live.
                debug_assert!(false, "upward flit without circuit at {}", self.node);
                if ctx.obs.is_enabled() {
                    ctx.obs.inc(ctx.obs.mech.circuit_lookup_misses);
                }
                let route = ctx.arena.desc(&flit).route;
                ctx.routing.route(ctx.topo, self.node, in_port, &route)
            }
        };
        self.bypass.push_back(BypassFlit {
            flit,
            in_port,
            out_port,
            arrived: ctx.now,
        });
    }

    /// Handles a returning credit.
    pub(crate) fn deliver_credit(&mut self, out_port: Port, vc_flat: usize, is_free: bool) {
        let vc = &mut self.out_vcs[out_port.index() * self.vcs_per_port + vc_flat];
        vc.credits += 1;
        if is_free {
            vc.busy = false;
        }
    }

    /// Handles an arriving control message (buffer write into the dedicated
    /// 32-bit buffer of its class).
    pub(crate) fn deliver_control(&mut self, in_port: Port, msg: ControlMsg, now: Cycle) {
        match msg.class {
            ControlClass::ReqLike => self.req_buf.push_back((msg, in_port, now)),
            ControlClass::AckLike => self.ack_buf.push_back((msg, in_port, now)),
        }
    }

    // ------------------------------------------------------------------ step

    /// Processes one cycle: bypass forwarding, control-signal switch
    /// allocation, then normal separable switch allocation and commit.
    pub(crate) fn step(&mut self, ctx: &mut RouterCtx<'_>) {
        let mut claimed_out = [false; Port::COUNT];
        let mut claimed_in = [false; Port::COUNT];

        self.step_bypass(ctx, &mut claimed_out, &mut claimed_in);
        self.step_control(ctx, &mut claimed_out);
        self.step_normal(ctx, &mut claimed_out, &mut claimed_in);

        ctx.stats.max_req_buffer_occupancy =
            ctx.stats.max_req_buffer_occupancy.max(self.req_buf.len());
        ctx.stats.max_ack_buffer_occupancy =
            ctx.stats.max_ack_buffer_occupancy.max(self.ack_buf.len());
    }

    /// Upward flits: absolute priority, single ST stage.
    fn step_bypass(
        &mut self,
        ctx: &mut RouterCtx<'_>,
        claimed_out: &mut [bool; Port::COUNT],
        claimed_in: &mut [bool; Port::COUNT],
    ) {
        // In-place retain (instead of draining into a fresh queue) keeps the
        // per-cycle hot path allocation-free; `self.bypass` is moved out so
        // the closure can borrow the rest of `self` mutably.
        let mut bypass = std::mem::take(&mut self.bypass);
        bypass.retain(|b| {
            let eligible = b.arrived < ctx.now
                && !claimed_out[b.out_port.index()]
                && !claimed_in[b.in_port.index()]
                // A dynamically-failed link retains the flit in the latch
                // until the heal (fail-stop; nothing in flight is dropped).
                && (b.out_port == Port::Local
                    || ctx.topo.neighbor(self.node, b.out_port).is_some());
            if !eligible {
                return true;
            }
            claimed_out[b.out_port.index()] = true;
            claimed_in[b.in_port.index()] = true;
            ctx.stats.bypass_hops += 1;
            ctx.bump_link(self.node, b.out_port);
            ctx.tracker.touch(ctx.now);
            if ctx.tracer.enabled() {
                ctx.tracer.record(TraceEvent::BypassHop {
                    at: ctx.now,
                    packet: ctx.arena.desc(&b.flit).id,
                    node: self.node,
                    out_port: b.out_port,
                });
            }
            if b.out_port == Port::Up {
                self.up_last_sent[ctx.arena.desc(&b.flit).vnet.index()] = ctx.now;
            }
            let arrival = ctx.now + ctx.cfg.link_latency;
            if b.out_port == Port::Local {
                ctx.emit.push((
                    arrival,
                    Event::NiFlitArrive {
                        node: self.node,
                        flit: b.flit,
                    },
                ));
            } else {
                let peer = ctx
                    .topo
                    .neighbor(self.node, b.out_port)
                    .unwrap_or_else(|| panic!("bypass over missing link at {}", self.node));
                ctx.emit.push((
                    arrival,
                    Event::FlitArrive {
                        node: peer,
                        in_port: b.out_port.opposite(),
                        vc_flat: 0,
                        flit: b.flit,
                    },
                ));
            }
            false
        });
        self.bypass = bypass;
    }

    /// Control messages: priority over normal flits, one req-like and one
    /// ack-like transfer per cycle at most.
    fn step_control(&mut self, ctx: &mut RouterCtx<'_>, claimed_out: &mut [bool; Port::COUNT]) {
        // Alternate which buffer goes first for fairness. The order is
        // derived from the cycle parity rather than a toggled flag so an
        // idle step leaves the router bit-identical to one that was never
        // stepped — the active-set scheduler relies on this to skip empty
        // routers without perturbing control-message ordering.
        let order = if ctx.now & 1 == 1 {
            [ControlClass::AckLike, ControlClass::ReqLike]
        } else {
            [ControlClass::ReqLike, ControlClass::AckLike]
        };
        for class in order {
            let buf = match class {
                ControlClass::ReqLike => &mut self.req_buf,
                ControlClass::AckLike => &mut self.ack_buf,
            };
            let Some(&(msg, in_port, arrived)) = buf.front() else {
                continue;
            };
            if arrived >= ctx.now {
                continue;
            }
            // Route the message.
            let (out_port, terminate) = match msg.routing {
                ControlRoute::Forward => {
                    if self.node == msg.route.dest {
                        (Port::Local, msg.deliver_to_ni)
                    } else {
                        (
                            ctx.routing.route(ctx.topo, self.node, in_port, &msg.route),
                            false,
                        )
                    }
                }
                ControlRoute::Reverse => {
                    if self.node == msg.route.dest {
                        // Terminates at this router (interposer side).
                        let buf = match class {
                            ControlClass::ReqLike => &mut self.req_buf,
                            ControlClass::AckLike => &mut self.ack_buf,
                        };
                        buf.pop_front();
                        self.control_inbox.push(DeliveredControl {
                            msg,
                            in_port,
                            at: ctx.now,
                        });
                        continue;
                    }
                    match self.circuits.get(&(msg.vnet, msg.circuit_key)) {
                        Some(e) => {
                            if ctx.obs.is_enabled() {
                                ctx.obs.inc(ctx.obs.mech.circuit_lookup_hits);
                            }
                            (e.in_port, false)
                        }
                        None => {
                            // Reverse path lost (stale protocol state): drop.
                            if ctx.obs.is_enabled() {
                                ctx.obs.inc(ctx.obs.mech.circuit_lookup_misses);
                            }
                            let buf = match class {
                                ControlClass::ReqLike => &mut self.req_buf,
                                ControlClass::AckLike => &mut self.ack_buf,
                            };
                            buf.pop_front();
                            continue;
                        }
                    }
                }
            };
            if claimed_out[out_port.index()] {
                continue; // delayed one cycle (upward flits win, Sec. V-C1)
            }
            if out_port != Port::Local && ctx.topo.neighbor(self.node, out_port).is_none() {
                continue; // dead link: the message stays queued until heal
            }
            let buf = match class {
                ControlClass::ReqLike => &mut self.req_buf,
                ControlClass::AckLike => &mut self.ack_buf,
            };
            buf.pop_front();
            claimed_out[out_port.index()] = true;
            ctx.stats.control_hops += 1;
            ctx.tracker.touch(ctx.now);
            if ctx.tracer.enabled() {
                ctx.tracer.record(TraceEvent::ControlHop {
                    at: ctx.now,
                    node: self.node,
                    out_port,
                    class: msg.class,
                    bits: msg.bits,
                    vnet: msg.vnet,
                    origin: msg.origin,
                    routing: msg.routing,
                });
            }
            if msg.record_circuit {
                let prev = self.circuits.insert(
                    (msg.vnet, msg.circuit_key),
                    CircuitEntry {
                        in_port,
                        out_port,
                        set_at: ctx.now,
                    },
                );
                if ctx.obs.is_enabled() {
                    if prev.is_some() {
                        // Destination-keyed table: a newer popup toward the
                        // same destination evicts the stale reverse path.
                        ctx.obs.inc(ctx.obs.mech.circuit_evictions);
                    } else {
                        ctx.obs.inc(ctx.obs.mech.circuit_inserts);
                        ctx.obs.gauge_add(ctx.obs.mech.circuit_entries, 1);
                    }
                }
            }
            let arrival = ctx.now + 1 + ctx.cfg.link_latency;
            if out_port == Port::Local {
                if terminate {
                    ctx.emit.push((
                        arrival,
                        Event::NiControlArrive {
                            node: self.node,
                            in_port,
                            msg,
                        },
                    ));
                } else {
                    // Forward message terminating at a router (not used by
                    // UPP, but keep the datapath total).
                    self.control_inbox.push(DeliveredControl {
                        msg,
                        in_port,
                        at: ctx.now,
                    });
                }
            } else {
                let peer = ctx
                    .topo
                    .neighbor(self.node, out_port)
                    .unwrap_or_else(|| panic!("control over missing link at {}", self.node));
                ctx.emit.push((
                    arrival,
                    Event::ControlArrive {
                        node: peer,
                        in_port: out_port.opposite(),
                        msg,
                    },
                ));
            }
        }
    }

    /// Separable two-phase switch allocation over normal input VCs plus the
    /// absorber's re-injection slots, then commit.
    fn step_normal(
        &mut self,
        ctx: &mut RouterCtx<'_>,
        claimed_out: &mut [bool; Port::COUNT],
        claimed_in: &mut [bool; Port::COUNT],
    ) {
        #[derive(Clone, Copy)]
        struct Bid {
            in_port: Port,
            /// VC index, or `usize::MAX - slot` for absorber slots.
            vc_flat: usize,
            out_port: Port,
            priority: bool,
        }

        // Phase 1: one candidate per input port. At most one bid can exist
        // per input (the absorber bids as `Down`, which is excluded as a
        // crossbar input whenever an absorber is installed), so a fixed
        // port-indexed array replaces the former per-cycle `Vec`.
        let mut bids: [Option<Bid>; Port::COUNT] = [None; Port::COUNT];
        for p in Port::ALL {
            if claimed_in[p.index()] || !self.has_link[p.index()] {
                continue;
            }
            if p == Port::Down && self.absorber.is_some() {
                continue; // Down arrivals are absorbed, not crossbar inputs.
            }
            let n = self.vcs_per_port;
            let base = p.index() * n;
            let start = self.rr_in[p.index()] % n;
            let mut chosen: Option<(usize, bool)> = None;
            for off in 0..n {
                let f = (start + off) % n;
                if self.vc_request(p, f, ctx).is_none() {
                    if ctx.tracer.enabled() {
                        if let Some((packet, out, reason)) = self.classify_block(p, f, ctx) {
                            ctx.tracer.record(TraceEvent::Blocked {
                                at: ctx.now,
                                packet,
                                node: self.node,
                                in_port: p,
                                vc_flat: f,
                                out_port: out,
                                reason,
                            });
                        }
                    }
                    continue;
                }
                let prio = !self.priority_packets.is_empty()
                    && self.priority_packets.contains(
                        &ctx.arena
                            .desc(
                                &self
                                    .bufs
                                    .front(base + f)
                                    .expect("request implies head flit")
                                    .flit,
                            )
                            .id,
                    );
                match chosen {
                    None => chosen = Some((f, prio)),
                    Some((_, false)) if prio => chosen = Some((f, prio)),
                    _ => {}
                }
                if prio {
                    break;
                }
            }
            if let Some((f, prio)) = chosen {
                let out = self.request_out_port(p, f);
                bids[p.index()] = Some(Bid {
                    in_port: p,
                    vc_flat: f,
                    out_port: out,
                    priority: prio,
                });
            }
        }
        // Absorber re-injection bids on the Down "input".
        if self.absorber.is_some() && !claimed_in[Port::Down.index()] {
            if let Some((slot, out)) = self.absorber_request(ctx) {
                bids[Port::Down.index()] = Some(Bid {
                    in_port: Port::Down,
                    vc_flat: usize::MAX - slot,
                    out_port: out,
                    priority: false,
                });
            }
        }

        // Phase 2: one winner per output port. Scanning the bid array in
        // port-index order yields the contenders already sorted by input
        // port, so priority-first / round-robin arbitration matches the old
        // sorted-`Vec` behaviour without allocating.
        let mut winners: [Option<usize>; Port::COUNT] = [None; Port::COUNT];
        for out in Port::ALL {
            if claimed_out[out.index()] {
                continue;
            }
            let mut contenders: [Option<&Bid>; Port::COUNT] = [None; Port::COUNT];
            let mut n_cont = 0usize;
            let mut priority_winner: Option<&Bid> = None;
            for b in bids.iter().flatten() {
                if b.out_port != out {
                    continue;
                }
                contenders[n_cont] = Some(b);
                n_cont += 1;
                if b.priority && priority_winner.is_none() {
                    priority_winner = Some(b);
                }
            }
            if n_cont == 0 {
                continue;
            }
            let winner = if let Some(pb) = priority_winner {
                *pb
            } else {
                let start = self.rr_out[out.index()] % n_cont;
                *contenders[start].expect("contender count covers the prefix")
            };
            claimed_out[out.index()] = true;
            claimed_in[winner.in_port.index()] = true;
            self.rr_out[out.index()] = self.rr_out[out.index()].wrapping_add(1);
            self.rr_in[winner.in_port.index()] = self.rr_in[winner.in_port.index()].wrapping_add(1);
            if ctx.tracer.enabled() {
                winners[winner.in_port.index()] = Some(winner.vc_flat);
            }
            if winner.vc_flat > usize::MAX / 2 {
                let slot = usize::MAX - winner.vc_flat;
                self.commit_absorber(ctx, slot, winner.out_port);
            } else {
                self.commit_normal(ctx, winner.in_port, winner.vc_flat, winner.out_port);
            }
        }
        // Bids that did not win this cycle stalled on switch allocation.
        if ctx.tracer.enabled() {
            for b in bids
                .iter()
                .flatten()
                .filter(|b| b.vc_flat <= usize::MAX / 2)
            {
                if winners[b.in_port.index()] == Some(b.vc_flat) {
                    continue;
                }
                let packet = ctx
                    .arena
                    .desc(
                        &self
                            .bufs
                            .front(b.in_port.index() * self.vcs_per_port + b.vc_flat)
                            .expect("losing bid still holds its flit")
                            .flit,
                    )
                    .id;
                ctx.tracer.record(TraceEvent::Blocked {
                    at: ctx.now,
                    packet,
                    node: self.node,
                    in_port: b.in_port,
                    vc_flat: b.vc_flat,
                    out_port: Some(b.out_port),
                    reason: BlockReason::SwitchAlloc,
                });
            }
        }
    }

    /// Diagnoses why a buffered head-of-line flit cannot bid this cycle
    /// (tracing only; mirrors [`Router::vc_request`] without touching any
    /// state). `None` when the VC is simply inactive (empty, frozen, flit
    /// still in its buffer-write cycle, or no link on its route).
    fn classify_block(
        &self,
        p: Port,
        f: usize,
        ctx: &RouterCtx<'_>,
    ) -> Option<(PacketId, Option<Port>, BlockReason)> {
        let iv = p.index() * self.vcs_per_port + f;
        let vc = &self.in_vcs[iv];
        if vc.frozen {
            return None;
        }
        let head = self.bufs.front(iv)?;
        if head.arrived >= ctx.now {
            return None;
        }
        let out = vc.route_out?;
        if !self.has_link[out.index()] {
            return None;
        }
        if out != Port::Local && ctx.topo.neighbor(self.node, out).is_none() {
            return None; // dynamically-failed link: the packet waits for heal
        }
        match vc.out_vc {
            Some(ovc) if self.out_vcs[out.index() * self.vcs_per_port + ovc].credits == 0 => {
                Some((
                    ctx.arena.desc(&head.flit).id,
                    Some(out),
                    BlockReason::Credit,
                ))
            }
            None => {
                let desc = ctx.arena.head_desc(&head.flit);
                let need = Self::alloc_credits_needed(ctx, &head.flit);
                if !self.free_out_vc_exists(out, desc.vnet, need, ctx) {
                    Some((desc.id, Some(out), BlockReason::VcAlloc))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Whether input VC `(p, f)` can bid this cycle; `Some(())` when it can.
    fn vc_request(&self, p: Port, f: usize, ctx: &RouterCtx<'_>) -> Option<()> {
        let iv = p.index() * self.vcs_per_port + f;
        let vc = &self.in_vcs[iv];
        if vc.frozen {
            return None;
        }
        let head = self.bufs.front(iv)?;
        if head.arrived >= ctx.now {
            return None;
        }
        let out = vc.route_out?;
        if !self.has_link[out.index()] {
            return None;
        }
        if out != Port::Local && ctx.topo.neighbor(self.node, out).is_none() {
            // Fail-stop: never bid over a dynamically-failed link. The VC
            // (and its worm) waits in place until the link heals.
            return None;
        }
        match vc.out_vc {
            Some(ovc) => {
                if self.out_vcs[out.index() * self.vcs_per_port + ovc].credits == 0 {
                    return None;
                }
            }
            None => {
                debug_assert!(
                    head.flit.kind.is_head(),
                    "body flit without allocated out VC"
                );
                let vnet = ctx.arena.head_desc(&head.flit).vnet;
                let need = Self::alloc_credits_needed(ctx, &head.flit);
                if !self.free_out_vc_exists(out, vnet, need, ctx) {
                    return None;
                }
            }
        }
        Some(())
    }

    /// Credits a head flit needs to win VC allocation: one under wormhole,
    /// the whole packet under virtual cut-through. Every call site holds a
    /// head flit (VC allocation happens at heads only), so the route-header
    /// read goes through the asserting [`PacketArena::head_desc`].
    fn alloc_credits_needed(ctx: &RouterCtx<'_>, flit: &Flit) -> usize {
        match ctx.cfg.flow_control {
            crate::config::FlowControl::Wormhole => 1,
            crate::config::FlowControl::VirtualCutThrough => {
                ctx.arena.head_desc(flit).pkt_len as usize
            }
        }
    }

    fn request_out_port(&self, p: Port, f: usize) -> Port {
        self.in_vcs[p.index() * self.vcs_per_port + f]
            .route_out
            .expect("bidding VC has a route")
    }

    fn free_out_vc_exists(
        &self,
        out: Port,
        vnet: VnetId,
        need: usize,
        ctx: &RouterCtx<'_>,
    ) -> bool {
        if out == Port::Local && ctx.ni.free_entries(vnet) == 0 {
            return false;
        }
        let base = vnet.index() * self.vcs_per_vnet;
        (base..base + self.vcs_per_vnet).any(|ovc| {
            let s = &self.out_vcs[out.index() * self.vcs_per_port + ovc];
            (!s.busy || self.infinite_sink[out.index()]) && s.credits >= need
        })
    }

    fn pick_out_vc(&mut self, out: Port, vnet: VnetId, need: usize) -> usize {
        let base = vnet.index() * self.vcs_per_vnet;
        let free = |ovc: usize| {
            let s = &self.out_vcs[out.index() * self.vcs_per_port + ovc];
            (!s.busy || self.infinite_sink[out.index()]) && s.credits >= need
        };
        let n = (base..base + self.vcs_per_vnet)
            .filter(|&ovc| free(ovc))
            .count();
        debug_assert!(n > 0);
        // VC selection picks randomly among free VCs (Sec. V-B2 / Fig. 5).
        // Counting then re-scanning for the k-th candidate draws exactly the
        // same single `gen_range(0..n)` the collected-`Vec` version did, so
        // RNG streams (and therefore simulations) stay bit-identical.
        let k = self.rng.gen_range(0..n);
        (base..base + self.vcs_per_vnet)
            .filter(|&ovc| free(ovc))
            .nth(k)
            .expect("k < candidate count")
    }

    fn commit_normal(&mut self, ctx: &mut RouterCtx<'_>, in_port: Port, f: usize, out: Port) {
        let (flit, needs_alloc) = {
            let iv = in_port.index() * self.vcs_per_port + f;
            let b = self.bufs.pop_front(iv).expect("winner has a head flit");
            (b.flit, self.in_vcs[iv].out_vc.is_none())
        };
        let ovc = if needs_alloc {
            let desc = ctx.arena.head_desc(&flit);
            let (id, vnet) = (desc.id, desc.vnet);
            let need = Self::alloc_credits_needed(ctx, &flit);
            let ovc = self.pick_out_vc(out, vnet, need);
            self.out_vcs[out.index() * self.vcs_per_port + ovc].busy = true;
            if out == Port::Local {
                ctx.ni.claim_entry(vnet);
            }
            self.in_vcs[in_port.index() * self.vcs_per_port + f].out_vc = Some(ovc);
            if ctx.tracer.enabled() {
                ctx.tracer.record(TraceEvent::VcAllocated {
                    at: ctx.now,
                    packet: id,
                    node: self.node,
                    in_port,
                    vc_flat: f,
                    out_port: out,
                    out_vc: ovc,
                });
            }
            ovc
        } else {
            self.in_vcs[in_port.index() * self.vcs_per_port + f]
                .out_vc
                .expect("allocated")
        };
        self.out_vcs[out.index() * self.vcs_per_port + ovc].credits -= 1;

        // Credit back upstream.
        let credit_at = ctx.now + ctx.cfg.credit_latency;
        let is_tail = flit.kind.is_tail();
        match in_port {
            Port::Local => ctx.emit.push((
                credit_at,
                Event::NiCreditArrive {
                    node: self.node,
                    vc_flat: f,
                    is_free: is_tail,
                },
            )),
            _ => {
                // Credits travel the physical link even while it is marked
                // faulty (dedicated reverse wires): upstream counters stay
                // consistent across a dynamic fail/heal pair.
                let peer = ctx
                    .topo
                    .raw_neighbor(self.node, in_port)
                    .expect("input arrivals come over existing links");
                ctx.emit.push((
                    credit_at,
                    Event::CreditArrive {
                        node: peer,
                        out_port: in_port.opposite(),
                        vc_flat: f,
                        is_free: is_tail,
                    },
                ));
            }
        }

        if is_tail {
            let vc = &mut self.in_vcs[in_port.index() * self.vcs_per_port + f];
            vc.owner = None;
            vc.route_out = None;
            vc.out_vc = None;
            vc.frozen = false;
            if !self.priority_packets.is_empty() {
                self.priority_packets.remove(&ctx.arena.desc(&flit).id);
            }
        }
        self.forward_flit(ctx, flit, out, ovc, is_tail);
    }

    fn absorber_request(&self, ctx: &RouterCtx<'_>) -> Option<(usize, Port)> {
        let abs = self.absorber.as_ref()?;
        let n = abs.slots.len();
        for off in 0..n {
            let s = (abs.rr + off) % n;
            let slot = &abs.slots[s];
            if slot.packet.is_none() {
                continue;
            }
            let Some(head) = slot.buf.front() else {
                continue;
            };
            // Extra +1 cycle models remote control's serialized VA/SA stages
            // at boundary crossings (Sec. III-B).
            if head.arrived + 1 >= ctx.now {
                continue;
            }
            let out = slot.route_out.expect("absorbed head computed a route");
            if !self.has_link[out.index()] {
                continue;
            }
            if out != Port::Local && ctx.topo.neighbor(self.node, out).is_none() {
                continue; // dynamically-failed link: re-inject after heal
            }
            let ok = match slot.out_vc {
                Some(ovc) => self.out_vcs[out.index() * self.vcs_per_port + ovc].credits > 0,
                None => {
                    head.flit.kind.is_head()
                        && self.free_out_vc_exists(
                            out,
                            ctx.arena.head_desc(&head.flit).vnet,
                            Self::alloc_credits_needed(ctx, &head.flit),
                            ctx,
                        )
                }
            };
            if ok {
                return Some((s, out));
            }
        }
        None
    }

    fn commit_absorber(&mut self, ctx: &mut RouterCtx<'_>, slot: usize, out: Port) {
        let (flit, needs_alloc) = {
            let abs = self.absorber.as_mut().expect("absorber committed");
            abs.rr = (slot + 1) % abs.slots.len();
            let s = &mut abs.slots[slot];
            let b = s.buf.pop_front().expect("winner has a flit");
            (b.flit, s.out_vc.is_none())
        };
        let ovc = if needs_alloc {
            let vnet = ctx.arena.head_desc(&flit).vnet;
            let need = Self::alloc_credits_needed(ctx, &flit);
            let ovc = self.pick_out_vc(out, vnet, need);
            self.out_vcs[out.index() * self.vcs_per_port + ovc].busy = true;
            if out == Port::Local {
                ctx.ni.claim_entry(vnet);
            }
            self.absorber.as_mut().expect("absorber").slots[slot].out_vc = Some(ovc);
            ovc
        } else {
            self.absorber.as_ref().expect("absorber").slots[slot]
                .out_vc
                .expect("allocated")
        };
        self.out_vcs[out.index() * self.vcs_per_port + ovc].credits -= 1;
        let is_tail = flit.kind.is_tail();
        if is_tail {
            let s = &mut self.absorber.as_mut().expect("absorber").slots[slot];
            s.packet = None;
            s.route_out = None;
            s.out_vc = None;
        }
        self.forward_flit(ctx, flit, out, ovc, is_tail);
    }

    fn forward_flit(
        &mut self,
        ctx: &mut RouterCtx<'_>,
        flit: Flit,
        out: Port,
        ovc: usize,
        is_tail: bool,
    ) {
        ctx.stats.flit_hops += 1;
        ctx.bump_link(self.node, out);
        ctx.tracker.touch(ctx.now);
        if out == Port::Up {
            self.up_last_sent[ctx.arena.desc(&flit).vnet.index()] = ctx.now;
        }
        if out == Port::Local && is_tail {
            // The NI entry holds the packet; free the ejection VC now.
            self.out_vcs[out.index() * self.vcs_per_port + ovc].busy = false;
        }
        if self.infinite_sink[out.index()] && out != Port::Local && is_tail {
            self.out_vcs[out.index() * self.vcs_per_port + ovc].busy = false;
        }
        let arrival = ctx.now + 1 + ctx.cfg.link_latency;
        if out == Port::Local {
            ctx.emit.push((
                arrival,
                Event::NiFlitArrive {
                    node: self.node,
                    flit,
                },
            ));
        } else {
            let peer = ctx
                .topo
                .neighbor(self.node, out)
                .unwrap_or_else(|| panic!("forwarding over missing link at {}", self.node));
            ctx.emit.push((
                arrival,
                Event::FlitArrive {
                    node: peer,
                    in_port: out.opposite(),
                    vc_flat: ovc,
                    flit,
                },
            ));
        }
    }

    // ------------------------------------------------------- popup mechanics

    /// Pops the head-of-buffer flit of an input VC into the bypass latch
    /// toward `out_port` (upward-packet popup and its chiplet-side variant
    /// for partly-transmitted worms).
    ///
    /// The flit is marked `upward`, its buffer credit returns upstream, and
    /// on tail the VC is deallocated. Returns the flit, or `None` when the VC
    /// has no eligible flit this cycle.
    pub(crate) fn pop_bypass_flit(
        &mut self,
        ctx: &mut RouterCtx<'_>,
        in_port: Port,
        vc_flat: usize,
        out_port: Port,
    ) -> Option<Flit> {
        if !self.has_link[out_port.index()] {
            return None;
        }
        if out_port != Port::Local && ctx.topo.neighbor(self.node, out_port).is_none() {
            return None; // dynamically-failed link: popup resumes after heal
        }
        let iv = in_port.index() * self.vcs_per_port + vc_flat;
        let head = self.bufs.front(iv)?;
        if head.arrived >= ctx.now {
            return None;
        }
        let mut flit = self.bufs.pop_front(iv).expect("checked non-empty").flit;
        flit.upward = true;
        if ctx.tracer.enabled() {
            ctx.tracer.record(TraceEvent::BypassPop {
                at: ctx.now,
                packet: ctx.arena.desc(&flit).id,
                node: self.node,
                in_port,
                vc_flat,
                out_port,
            });
        }
        let is_tail = flit.kind.is_tail();
        if is_tail {
            let vc = &mut self.in_vcs[iv];
            vc.owner = None;
            vc.route_out = None;
            vc.out_vc = None;
            vc.frozen = false;
        }
        // Credit upstream for the freed slot.
        let credit_at = ctx.now + ctx.cfg.credit_latency;
        match in_port {
            Port::Local => ctx.emit.push((
                credit_at,
                Event::NiCreditArrive {
                    node: self.node,
                    vc_flat,
                    is_free: is_tail,
                },
            )),
            _ => {
                // Physical link: credits survive a dynamic fault (see
                // `commit_normal`).
                let peer = ctx
                    .topo
                    .raw_neighbor(self.node, in_port)
                    .expect("popup pops from a real input port");
                ctx.emit.push((
                    credit_at,
                    Event::CreditArrive {
                        node: peer,
                        out_port: in_port.opposite(),
                        vc_flat,
                        is_free: is_tail,
                    },
                ));
            }
        }
        self.bypass.push_back(BypassFlit {
            flit,
            in_port,
            out_port,
            arrived: ctx.now, // forwarded from the next cycle
        });
        Some(flit)
    }

    /// Iterates `(port, vc_flat)` over all existing input VCs.
    pub fn input_vcs(&self) -> impl Iterator<Item = (Port, usize)> + '_ {
        Port::ALL
            .into_iter()
            .filter(move |p| self.has_link[p.index()])
            .flat_map(move |p| (0..self.vcs_per_port).map(move |f| (p, f)))
    }

    /// Flat VC range of one VNet.
    pub fn vnet_range(&self, vnet: VnetId) -> std::ops::Range<usize> {
        let base = vnet.index() * self.vcs_per_vnet;
        base..base + self.vcs_per_vnet
    }

    /// Number of VNets configured.
    pub fn num_vnets(&self) -> usize {
        self.num_vnets
    }

    /// Exact heap bytes of this router's steady-state storage: the input-VC
    /// ring bank, VC control state, credit mirrors, control buffers and the
    /// absorber's slots. Transient structures (bypass latch, circuit table,
    /// priority set) are counted at their current footprint.
    pub fn mem_bytes(&self) -> usize {
        use std::mem::size_of;
        self.bufs.mem_bytes()
            + self.in_vcs.len() * size_of::<InputVc>()
            + self.out_vcs.len() * size_of::<OutVcState>()
            + self.req_buf.capacity() * size_of::<(ControlMsg, Port, Cycle)>()
            + self.ack_buf.capacity() * size_of::<(ControlMsg, Port, Cycle)>()
            + self.bypass.capacity() * size_of::<BypassFlit>()
            + self.circuits.len() * size_of::<((VnetId, NodeId), CircuitEntry)>()
            + self.priority_packets.len() * size_of::<PacketId>()
            + self.up_last_sent.len() * size_of::<Cycle>()
            + self.absorber.as_ref().map_or(0, |a| {
                a.slots.len() * size_of::<AbsorbSlot>()
                    + a.slots
                        .iter()
                        .map(|s| s.buf.capacity() * size_of::<BufferedFlit>())
                        .sum::<usize>()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::ids::PacketId;
    use crate::ni::ConsumePolicy;
    use crate::packet::RouteInfo;
    use crate::routing::ChipletRouting;
    use crate::topology::ChipletSystemSpec;

    use crate::packet::{PacketArena, PacketDesc};

    struct Harness {
        cfg: NocConfig,
        topo: Topology,
        routing: ChipletRouting,
        ni: Ni,
        emit: Vec<(Cycle, Event)>,
        stats: NetStats,
        tracker: PacketTracker,
        tracer: Tracer,
        obs: ObsRegistry,
        arena: PacketArena,
    }

    impl Harness {
        fn new(cfg: NocConfig) -> Self {
            let topo = ChipletSystemSpec::baseline().build(0).unwrap();
            let ni = Ni::new(NodeId(0), &cfg, ConsumePolicy::Immediate { latency: 1 });
            Self {
                cfg,
                topo,
                routing: ChipletRouting::xy(),
                ni,
                emit: Vec::new(),
                stats: NetStats::new(3),
                tracker: PacketTracker::new(),
                tracer: Tracer::disabled(),
                obs: ObsRegistry::disabled(),
                arena: PacketArena::new(),
            }
        }

        fn ctx(&mut self, now: Cycle) -> RouterCtx<'_> {
            RouterCtx {
                cfg: &self.cfg,
                topo: &self.topo,
                routing: &self.routing,
                now,
                ni: &mut self.ni,
                emit: &mut self.emit,
                stats: &mut self.stats,
                tracker: &mut self.tracker,
                tracer: &mut self.tracer,
                obs: &mut self.obs,
                arena: &self.arena,
                link_log: None,
            }
        }

        fn router(&self) -> Router {
            // Node 5 = (1,1) of chiplet 0: an interior router with N/E/S/W.
            Router::new(self.topo.chiplets()[0].routers[5], &self.cfg, &self.topo, 1)
        }

        /// Interns a descriptor for packet 1 of `len` flits toward `dest`.
        fn intern(&mut self, len: u16, dest: NodeId) -> PacketRef {
            self.arena.alloc(PacketDesc {
                id: PacketId(1),
                src: NodeId(0),
                vnet: VnetId(0),
                pkt_len: len,
                route: RouteInfo::intra(dest),
                created_at: 0,
            })
        }
    }

    #[test]
    fn head_flit_buffer_write_computes_route() {
        let mut h = Harness::new(NocConfig::default());
        let mut r = h.router();
        let dest = h.topo.chiplets()[0].routers[6]; // east neighbour of node 5
        let d = h.intern(2, dest);
        let mut ctx = h.ctx(0);
        r.deliver_flit(&mut ctx, Port::West, 0, Flit::new(d, 0, 2));
        let vc = r.input_vc(Port::West, 0);
        assert_eq!(vc.owner, Some(PacketId(1)));
        assert_eq!(vc.route_out, Some(Port::East));
        assert!(!r.vc_partly_transmitted(Port::West, 0));
        assert_eq!(r.vc_buf_len(Port::West, 0), 1);
    }

    #[test]
    fn flit_is_not_eligible_in_its_arrival_cycle() {
        let mut h = Harness::new(NocConfig::default());
        let mut r = h.router();
        let dest = h.topo.chiplets()[0].routers[6];
        let d = h.intern(1, dest);
        {
            let mut ctx = h.ctx(5);
            r.deliver_flit(&mut ctx, Port::West, 0, Flit::new(d, 0, 1));
        }
        {
            let mut ctx = h.ctx(5);
            r.step(&mut ctx); // same cycle: BW only
        }
        assert!(
            h.emit.is_empty(),
            "no flit may move in its buffer-write cycle"
        );
        {
            let mut ctx = h.ctx(6);
            r.step(&mut ctx); // SA one cycle later
        }
        assert_eq!(h.emit.len(), 2, "flit transfer + upstream credit");
    }

    #[test]
    fn commit_emits_credit_and_downstream_arrival() {
        let mut h = Harness::new(NocConfig::default());
        let mut r = h.router();
        let node = r.node();
        let dest = h.topo.chiplets()[0].routers[6];
        let east = h.topo.neighbor(node, Port::East).unwrap();
        let west = h.topo.neighbor(node, Port::West).unwrap();
        let d = h.intern(1, dest);
        {
            let mut ctx = h.ctx(0);
            r.deliver_flit(&mut ctx, Port::West, 0, Flit::new(d, 0, 1));
        }
        {
            let mut ctx = h.ctx(1);
            r.step(&mut ctx);
        }
        let mut saw_flit = false;
        let mut saw_credit = false;
        for (at, ev) in &h.emit {
            match ev {
                Event::FlitArrive {
                    node: n, in_port, ..
                } => {
                    assert_eq!(*n, east);
                    assert_eq!(*in_port, Port::West);
                    assert_eq!(*at, 1 + 1 + 1, "ST + LT after the SA cycle");
                    saw_flit = true;
                }
                Event::CreditArrive {
                    node: n,
                    out_port,
                    is_free,
                    ..
                } => {
                    assert_eq!(*n, west);
                    assert_eq!(*out_port, Port::East);
                    assert!(*is_free, "single-flit packet frees the VC");
                    saw_credit = true;
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(saw_flit && saw_credit);
        // Tail departure cleared the VC.
        assert!(r.input_vc(Port::West, 0).owner.is_none());
    }

    #[test]
    fn frozen_vc_is_skipped_by_allocation() {
        let mut h = Harness::new(NocConfig::default());
        let mut r = h.router();
        let dest = h.topo.chiplets()[0].routers[6];
        let d = h.intern(1, dest);
        {
            let mut ctx = h.ctx(0);
            r.deliver_flit(&mut ctx, Port::West, 0, Flit::new(d, 0, 1));
        }
        r.set_vc_frozen(Port::West, 0, true);
        {
            let mut ctx = h.ctx(1);
            r.step(&mut ctx);
        }
        assert!(h.emit.is_empty(), "frozen VCs must not move");
        r.set_vc_frozen(Port::West, 0, false);
        {
            let mut ctx = h.ctx(2);
            r.step(&mut ctx);
        }
        assert_eq!(h.emit.len(), 2);
    }

    #[test]
    fn out_of_credit_vc_cannot_win_allocation() {
        let mut h = Harness::new(NocConfig::default());
        let mut r = h.router();
        let dest = h.topo.chiplets()[0].routers[6];
        // Drain all 4 credits of the East out VC.
        for _ in 0..4 {
            let ctx = h.ctx(0);
            let _ = ctx;
        }
        // Simulate: 4 previous flits consumed the credits.
        let d = h.intern(6, dest);
        for seq in 0..4u16 {
            let mut ctx = h.ctx(seq as u64);
            r.deliver_flit(&mut ctx, Port::West, 0, Flit::new(d, seq, 6));
        }
        for now in 1..=4 {
            let mut ctx = h.ctx(now);
            r.step(&mut ctx);
        }
        let sent_before = h
            .emit
            .iter()
            .filter(|(_, e)| matches!(e, Event::FlitArrive { .. }))
            .count();
        assert_eq!(
            sent_before, 4,
            "exactly the downstream buffer depth may be in flight"
        );
        // Fifth flit arrives but no credits remain: it must stall.
        {
            let mut ctx = h.ctx(5);
            r.deliver_flit(&mut ctx, Port::West, 0, Flit::new(d, 4, 6));
        }
        {
            let mut ctx = h.ctx(6);
            r.step(&mut ctx);
        }
        let sent_after = h
            .emit
            .iter()
            .filter(|(_, e)| matches!(e, Event::FlitArrive { .. }))
            .count();
        assert_eq!(sent_after, 4, "no credit, no switch traversal");
        // A credit return unblocks it.
        r.deliver_credit(Port::East, 0, false);
        {
            let mut ctx = h.ctx(7);
            r.step(&mut ctx);
        }
        let sent_final = h
            .emit
            .iter()
            .filter(|(_, e)| matches!(e, Event::FlitArrive { .. }))
            .count();
        assert_eq!(sent_final, 5);
    }

    #[test]
    fn control_messages_win_allocation_over_normal_flits() {
        let mut h = Harness::new(NocConfig::default());
        let mut r = h.router();
        let dest = h.topo.chiplets()[0].routers[6];
        // A normal flit and a control message both want East.
        let d = h.intern(1, dest);
        {
            let mut ctx = h.ctx(0);
            r.deliver_flit(&mut ctx, Port::West, 0, Flit::new(d, 0, 1));
        }
        let msg = ControlMsg {
            class: ControlClass::ReqLike,
            bits: 1,
            vnet: VnetId(0),
            routing: ControlRoute::Forward,
            route: RouteInfo::intra(dest),
            origin: r.node(),
            circuit_key: dest,
            record_circuit: true,
            deliver_to_ni: true,
        };
        r.deliver_control(Port::North, msg, 0);
        {
            let mut ctx = h.ctx(1);
            r.step(&mut ctx);
        }
        // Only the control message may have used East this cycle.
        let flits: Vec<_> = h
            .emit
            .iter()
            .filter(|(_, e)| matches!(e, Event::FlitArrive { .. }))
            .collect();
        let ctrls: Vec<_> = h
            .emit
            .iter()
            .filter(|(_, e)| matches!(e, Event::ControlArrive { .. }))
            .collect();
        assert_eq!(ctrls.len(), 1, "signal goes first");
        assert!(flits.is_empty(), "the normal flit is delayed one cycle");
        // And the circuit was recorded with the observed ports.
        let entry = r.circuit(VnetId(0), dest).expect("req records a circuit");
        assert_eq!(entry.in_port, Port::North);
        assert_eq!(entry.out_port, Port::East);
    }

    #[test]
    fn absorber_reserves_accepts_and_frees() {
        let mut a = Absorber::new(2);
        assert_eq!(a.free_slots(), 2);
        assert!(a.reserve(PacketId(7)));
        assert!(a.reserve(PacketId(8)));
        assert!(!a.reserve(PacketId(9)), "no free slots left");
        assert_eq!(a.free_slots(), 0);
        let f = Flit::new(PacketRef(0), 0, 1);
        a.accept(f, PacketId(7), 0, Port::East);
        assert_eq!(a.free_slots(), 0, "occupied, not just reserved");
        assert_eq!(
            a.slots
                .iter()
                .filter(|s| s.packet == Some(PacketId(7)))
                .count(),
            1
        );
    }

    #[test]
    fn priority_packets_round_trip() {
        let h = Harness::new(NocConfig::default());
        let mut r = h.router();
        assert!(!r.is_priority_packet(PacketId(3)));
        r.add_priority_packet(PacketId(3));
        assert!(r.is_priority_packet(PacketId(3)));
        r.remove_priority_packet(PacketId(3));
        assert!(!r.is_priority_packet(PacketId(3)));
    }

    #[test]
    fn vnet_ranges_partition_the_flat_vc_space() {
        let h = Harness::new(NocConfig::default().with_vcs_per_vnet(4));
        let r = Router::new(h.topo.chiplets()[0].routers[5], &h.cfg, &h.topo, 1);
        assert_eq!(r.num_vnets(), 3);
        let mut covered = vec![false; 12];
        for v in 0..3u8 {
            for f in r.vnet_range(VnetId(v)) {
                assert!(!covered[f], "flat VC {f} claimed twice");
                covered[f] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }
}
