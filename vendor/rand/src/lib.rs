//! Vendored offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to a crates registry, so this crate
//! re-implements exactly the surface the workspace uses: `SmallRng` seeded
//! with `seed_from_u64`, `Rng::gen`, `Rng::gen_range` over half-open integer
//! ranges, and `SliceRandom::shuffle`. The generator is xoshiro256++ with a
//! splitmix64 seed expansion — deterministic for a given seed, which is all
//! the simulator requires.

pub mod rngs;
pub mod seq;

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64 state expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// The raw entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Values samplable uniformly from the generator's full output range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
range_impl!(u8, u16, u32, u64, usize);

macro_rules! range_impl_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
    )*};
}
range_impl_signed!(i8, i16, i32, i64, isize);

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over its whole domain (`f64` in [0, 1)).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let b: u8 = rng.gen_range(0..3u8);
            assert!(b < 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
