//! Whole-system channel-dependency analysis.
//!
//! While [`super::turns::ExtendedCdg`] analyses one chiplet against a
//! conservative virtual node (the composable-routing design tool), this
//! module builds the *actual-use* CDG of the entire system under a concrete
//! routing function: channels are all directed links (including vertical
//! ones), and an edge `c1 -> c2` exists iff some `(src, dest)` pair's route
//! holds `c1` and then requests `c2`.
//!
//! This is the formal backbone of the reproduction's honesty story:
//!
//! * under unrestricted three-leg routing the global CDG **is cyclic** —
//!   integration-induced deadlocks are reachable, which is why the
//!   unprotected system wedges and why UPP exists;
//! * under composable routing's restriction-respecting selections the global
//!   CDG **is acyclic** — the baseline's avoidance guarantee is structural,
//!   not an accident of the traffic we happened to run.

use crate::ids::{NodeId, Port};
use crate::routing::RouteComputer;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A directed physical channel: the link leaving `from` through `out`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalChannel {
    /// Source node of the directed link.
    pub from: NodeId,
    /// Port the link leaves through.
    pub out: Port,
}

/// The actual-use channel dependency graph of a routed system.
#[derive(Debug, Clone)]
pub struct GlobalCdg {
    channels: Vec<GlobalChannel>,
    index: HashMap<GlobalChannel, usize>,
    edges: Vec<HashSet<usize>>,
}

impl GlobalCdg {
    /// Builds the CDG by tracing every ordered `(src, dest)` pair under
    /// `routing`.
    ///
    /// Cost is `O(n^2 * path length)` — fine for the paper's system sizes
    /// (80–192 nodes); intended for validation and tests, not inner loops.
    pub fn build(topo: &Topology, routing: &dyn RouteComputer) -> Self {
        let mut channels = Vec::new();
        let mut index = HashMap::new();
        for n in topo.nodes() {
            for (p, _) in n.links() {
                if topo.is_link_faulty(n.id, p) {
                    continue;
                }
                let ch = GlobalChannel { from: n.id, out: p };
                index.insert(ch, channels.len());
                channels.push(ch);
            }
        }
        let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); channels.len()];

        let nodes: Vec<NodeId> = topo.nodes().iter().map(|n| n.id).collect();
        for &src in &nodes {
            for &dest in &nodes {
                if src == dest {
                    continue;
                }
                let plan = routing.plan(topo, src, dest);
                let mut cur = src;
                let mut in_port = Port::Local;
                let mut prev: Option<usize> = None;
                let mut hops = 0;
                while cur != dest {
                    let p = routing.route(topo, cur, in_port, &plan);
                    debug_assert_ne!(p, Port::Local);
                    let ch = index[&GlobalChannel { from: cur, out: p }];
                    if let Some(prev) = prev {
                        edges[prev].insert(ch);
                    }
                    prev = Some(ch);
                    cur = topo
                        .neighbor(cur, p)
                        .unwrap_or_else(|| panic!("route uses missing link {cur}:{p}"));
                    in_port = p.opposite();
                    hops += 1;
                    assert!(
                        hops <= 4 * topo.num_nodes(),
                        "routing livelock {src}->{dest}"
                    );
                }
            }
        }
        Self {
            channels,
            index,
            edges,
        }
    }

    /// Builds a dependency graph from an explicit edge list (runtime
    /// wait-for graphs, e.g. the hold/wait chains a
    /// [`crate::trace::StallReport`] extracts from a wedged network).
    /// Channels are registered in first-appearance order.
    pub fn from_edges(pairs: &[(GlobalChannel, GlobalChannel)]) -> Self {
        let mut channels = Vec::new();
        let mut index: HashMap<GlobalChannel, usize> = HashMap::new();
        let intern = |ch: GlobalChannel,
                      channels: &mut Vec<GlobalChannel>,
                      index: &mut HashMap<GlobalChannel, usize>| {
            *index.entry(ch).or_insert_with(|| {
                channels.push(ch);
                channels.len() - 1
            })
        };
        let mut edge_ids = Vec::with_capacity(pairs.len());
        for &(a, b) in pairs {
            let ia = intern(a, &mut channels, &mut index);
            let ib = intern(b, &mut channels, &mut index);
            edge_ids.push((ia, ib));
        }
        let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); channels.len()];
        for (ia, ib) in edge_ids {
            edges[ia].insert(ib);
        }
        Self {
            channels,
            index,
            edges,
        }
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges.iter().map(HashSet::len).sum()
    }

    /// Finds one dependency cycle as a channel sequence, or `None` when the
    /// graph is acyclic.
    pub fn find_cycle(&self) -> Option<Vec<GlobalChannel>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.channels.len();
        let mut color = vec![Color::White; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let adj: Vec<Vec<usize>> = self
            .edges
            .iter()
            .map(|s| {
                let mut v: Vec<usize> = s.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .collect();
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Grey;
            while let Some(&(u, ei)) = stack.last() {
                if ei < adj[u].len() {
                    let v = adj[u][ei];
                    stack.last_mut().expect("non-empty").1 += 1;
                    match color[v] {
                        Color::White => {
                            color[v] = Color::Grey;
                            parent[v] = Some(u);
                            stack.push((v, 0));
                        }
                        Color::Grey => {
                            let mut cycle = vec![self.channels[u]];
                            let mut cur = u;
                            while cur != v {
                                cur = parent[cur].expect("grey chain");
                                cycle.push(self.channels[cur]);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[u] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// True when no dependency cycle exists (the routed system cannot
    /// deadlock, whatever the traffic).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// True if channel `ch` participates in the graph.
    pub fn contains(&self, ch: GlobalChannel) -> bool {
        self.index.contains_key(&ch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ChipletRouting;
    use crate::topology::ChipletSystemSpec;

    #[test]
    fn unrestricted_three_leg_routing_is_globally_cyclic() {
        // The reproduction's premise, stated formally: the actually-used
        // dependency graph of XY + static binding over the baseline system
        // contains cycles, and every cycle crosses a vertical link.
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let cdg = GlobalCdg::build(&topo, &ChipletRouting::xy());
        let cycle = cdg.find_cycle().expect("integration must induce cycles");
        assert!(
            cycle.iter().any(|c| c.out.is_vertical()),
            "every integration-induced cycle crosses a vertical link: {cycle:?}"
        );
        // And specifically, some channel in the cycle is an upward link —
        // the upward-packet insight of Sec. IV-A.
        assert!(
            cycle.iter().any(|c| c.out == Port::Up),
            "the cycle must contain an upward vertical channel: {cycle:?}"
        );
    }

    #[test]
    fn large_system_is_also_cyclic() {
        let topo = ChipletSystemSpec::large().build(0).unwrap();
        let cdg = GlobalCdg::build(&topo, &ChipletRouting::xy());
        assert!(!cdg.is_acyclic());
    }

    #[test]
    fn from_edges_finds_planted_cycle() {
        let a = GlobalChannel {
            from: NodeId(0),
            out: Port::East,
        };
        let b = GlobalChannel {
            from: NodeId(1),
            out: Port::Up,
        };
        let c = GlobalChannel {
            from: NodeId(2),
            out: Port::South,
        };
        let d = GlobalChannel {
            from: NodeId(3),
            out: Port::West,
        };
        let acyclic = GlobalCdg::from_edges(&[(a, b), (b, c), (a, c)]);
        assert!(acyclic.is_acyclic());
        let cyclic = GlobalCdg::from_edges(&[(a, b), (b, c), (c, a), (c, d)]);
        let cycle = cyclic.find_cycle().expect("planted cycle found");
        assert_eq!(cycle.len(), 3);
        for ch in [a, b, c] {
            assert!(cycle.contains(&ch), "{ch:?} missing from {cycle:?}");
        }
    }

    #[test]
    fn cdg_counts_are_sane() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let cdg = GlobalCdg::build(&topo, &ChipletRouting::xy());
        // 4 chiplets x 48 + interposer 48 internal mesh channels...
        // just sanity-bound the totals.
        assert!(cdg.num_channels() > 200);
        assert!(cdg.num_edges() > cdg.num_channels());
        let some = GlobalChannel {
            from: topo.chiplets()[0].boundary_routers[0],
            out: Port::Down,
        };
        assert!(cdg.contains(some));
    }
}
