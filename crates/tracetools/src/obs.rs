//! Analysis over protocol-state telemetry (`upp_noc::obs`) output.
//!
//! Two input shapes, auto-detected by their markers:
//!
//! * a **summary** JSON document from `simulate --obs` (or the `"obs"`
//!   field of a `--json` payload), marked `"upp_obs": 1` — final counter
//!   totals, gauge value/high-water pairs, and full histograms;
//! * an **epoch** JSONL stream from `simulate --obs-every N --obs-out F`,
//!   whose header line is marked `"upp_obs_epochs": 1` — one snapshot of
//!   per-epoch deltas per line.
//!
//! Both carry the schema tag [`upp_noc::obs::OBS_SCHEMA`]; files written by
//! a different schema version are rejected up front rather than misread.
//! Histograms use the exact [`crate::Histogram`] JSON shape, so quantiles
//! here are computed over the original buckets, never re-approximated.

use std::fmt::Write as _;

use serde_json::Value;
use upp_noc::obs::OBS_SCHEMA;

use crate::histogram::Histogram;

/// One metric set: counter totals, gauge `(value, high)` pairs and
/// histograms, as parsed from either input shape. For epoch input the
/// counters are per-epoch deltas; for summary input they are run totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsSnapshot {
    /// Cycle the snapshot was cut at.
    pub cycle: u64,
    /// `(name, total)` pairs, in file order (sorted by name at the source).
    pub counters: Vec<(String, u64)>,
    /// `(name, (value, high-water))` pairs.
    pub gauges: Vec<(String, (u64, u64))>,
    /// `(name, histogram)` pairs.
    pub histograms: Vec<(String, Histogram)>,
}

impl ObsSnapshot {
    fn from_value(v: &Value) -> Option<Self> {
        let cycle = v.get("cycle")?.as_u64()?;
        let mut counters = Vec::new();
        for (name, val) in v.get("counters")?.as_object()? {
            counters.push((name.clone(), val.as_u64()?));
        }
        let mut gauges = Vec::new();
        for (name, val) in v.get("gauges")?.as_object()? {
            let pair = val.as_array()?;
            gauges.push((
                name.clone(),
                (pair.first()?.as_u64()?, pair.get(1)?.as_u64()?),
            ));
        }
        let mut histograms = Vec::new();
        for (name, val) in v.get("histograms")?.as_object()? {
            histograms.push((name.clone(), Histogram::from_value(val)?));
        }
        Some(Self {
            cycle,
            counters,
            gauges,
            histograms,
        })
    }
}

/// A parsed telemetry document: the final summary, plus the epoch time
/// series when the input was an epoch stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Run totals (summed across epochs for JSONL input).
    pub summary: ObsSnapshot,
    /// Per-epoch snapshots, oldest first; empty for summary input.
    pub epochs: Vec<ObsSnapshot>,
}

/// True when `v` is a telemetry summary document.
pub fn is_obs_summary(v: &Value) -> bool {
    v.get("upp_obs").and_then(Value::as_u64) == Some(1)
}

/// True when `line` is a telemetry epoch-stream header.
pub fn is_obs_epochs_header(v: &Value) -> bool {
    v.get("upp_obs_epochs").and_then(Value::as_u64) == Some(1)
}

fn check_schema(v: &Value) -> Result<(), String> {
    match v.get("schema").and_then(Value::as_str) {
        Some(s) if s == OBS_SCHEMA => Ok(()),
        Some(s) => Err(format!(
            "stale or foreign telemetry file: schema {s:?}, this tool reads {OBS_SCHEMA:?}"
        )),
        None => Err("telemetry file has no schema tag".into()),
    }
}

impl ObsReport {
    /// Parses a summary document (`simulate --obs`), or the `"obs"` field
    /// of a full `--json` payload.
    ///
    /// # Errors
    ///
    /// Returns a reason when the text is not valid JSON, carries no
    /// telemetry marker, or was written by a different schema version.
    pub fn from_summary_json(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("not JSON: {e:?}"))?;
        let v = if is_obs_summary(&v) {
            v
        } else if let Some(inner) = v.get("obs").filter(|o| is_obs_summary(o)) {
            inner.clone()
        } else {
            return Err("no \"upp_obs\" marker (not a telemetry summary)".into());
        };
        check_schema(&v)?;
        let summary = ObsSnapshot::from_value(&v).ok_or("malformed telemetry summary")?;
        Ok(Self {
            summary,
            epochs: Vec::new(),
        })
    }

    /// Parses an epoch JSONL stream (`simulate --obs-every`): a marked
    /// header line, then one snapshot per line. The run summary is rebuilt
    /// by summing counter deltas, merging histograms exactly, and joining
    /// gauge high-waters.
    ///
    /// # Errors
    ///
    /// Returns a reason on a missing/foreign header or a malformed line.
    pub fn from_epochs_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty telemetry file")?;
        let hv = serde_json::from_str(header).map_err(|e| format!("bad header: {e:?}"))?;
        if !is_obs_epochs_header(&hv) {
            return Err("no \"upp_obs_epochs\" header (not an epoch stream)".into());
        }
        check_schema(&hv)?;
        let mut epochs = Vec::new();
        for (i, line) in lines.enumerate() {
            let v = serde_json::from_str(line).map_err(|e| format!("line {}: {e:?}", i + 2))?;
            epochs.push(
                ObsSnapshot::from_value(&v)
                    .ok_or_else(|| format!("line {}: malformed epoch", i + 2))?,
            );
        }
        let mut summary = ObsSnapshot::default();
        for e in &epochs {
            summary.cycle = summary.cycle.max(e.cycle);
            merge_counts(&mut summary.counters, &e.counters);
            for (name, (value, high)) in &e.gauges {
                match summary.gauges.iter_mut().find(|(n, _)| n == name) {
                    // Later epochs win the instantaneous value; highs join.
                    Some((_, g)) => *g = (*value, g.1.max(*high)),
                    None => summary.gauges.push((name.clone(), (*value, *high))),
                }
            }
            for (name, h) in &e.histograms {
                match summary.histograms.iter_mut().find(|(n, _)| n == name) {
                    Some((_, acc)) => acc.merge(h),
                    None => summary.histograms.push((name.clone(), h.clone())),
                }
            }
        }
        Ok(Self { summary, epochs })
    }

    /// Auto-detects the input shape and parses it.
    ///
    /// # Errors
    ///
    /// Returns the summary-parse reason when the text is neither shape.
    pub fn parse(text: &str) -> Result<Self, String> {
        let head = text.trim_start();
        if head.starts_with('{') {
            if let Ok(v) = serde_json::from_str(head.lines().next().unwrap_or("")) {
                if is_obs_epochs_header(&v) {
                    return Self::from_epochs_jsonl(head);
                }
            }
        }
        Self::from_summary_json(head)
    }
}

fn merge_counts(acc: &mut Vec<(String, u64)>, add: &[(String, u64)]) {
    for (name, n) in add {
        match acc.iter_mut().find(|(a, _)| a == name) {
            Some((_, total)) => *total += n,
            None => acc.push((name.clone(), *n)),
        }
    }
}

/// Renders the per-metric report: counter totals, gauge value/high pairs,
/// and histogram count/mean/median/p95/max lines.
pub fn report_text(r: &ObsReport) -> String {
    let s = &r.summary;
    let mut out = format!("== telemetry report @ cycle {} ==\n", s.cycle);
    if !r.epochs.is_empty() {
        let _ = writeln!(out, "{} epochs", r.epochs.len());
    }
    if !s.counters.is_empty() {
        out.push_str("\ncounters (run totals):\n");
        let w = s.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, total) in &s.counters {
            let _ = writeln!(out, "  {name:<w$}  {total}");
        }
    }
    if !s.gauges.is_empty() {
        out.push_str("\ngauges (last sample / high-water):\n");
        let w = s.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, (value, high)) in &s.gauges {
            let _ = writeln!(out, "  {name:<w$}  {value} / {high}");
        }
    }
    if !s.histograms.is_empty() {
        out.push_str("\nhistograms:\n");
        let w = s.histograms.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, h) in &s.histograms {
            let _ = writeln!(
                out,
                "  {name:<w$}  n={} mean={:.1} p50={} p95={} max={}",
                h.count(),
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.max(),
            );
        }
    }
    out
}

/// Renders the epoch time series as CSV: one row per epoch, one column per
/// counter (per-epoch delta), per gauge (`<name>` sampled value and
/// `<name>.high` epoch high-water), and per histogram (`<name>.count` and
/// `<name>.mean`). Returns `None` for summary-only input.
pub fn timeseries_csv(r: &ObsReport) -> Option<String> {
    let first = r.epochs.first()?;
    let mut out = String::from("cycle");
    for (name, _) in &first.counters {
        let _ = write!(out, ",{name}");
    }
    for (name, _) in &first.gauges {
        let _ = write!(out, ",{name},{name}.high");
    }
    for (name, _) in &first.histograms {
        let _ = write!(out, ",{name}.count,{name}.mean");
    }
    out.push('\n');
    for e in &r.epochs {
        let _ = write!(out, "{}", e.cycle);
        for (_, total) in &e.counters {
            let _ = write!(out, ",{total}");
        }
        for (_, (value, high)) in &e.gauges {
            let _ = write!(out, ",{value},{high}");
        }
        for (_, h) in &e.histograms {
            let _ = write!(out, ",{},{:.3}", h.count(), h.mean());
        }
        out.push('\n');
    }
    Some(out)
}

/// All series names plottable by [`timeseries_svg`]: counters, gauge
/// high-waters, and histogram counts.
pub fn series_names(r: &ObsReport) -> Vec<String> {
    let Some(first) = r.epochs.first() else {
        return Vec::new();
    };
    first
        .counters
        .iter()
        .map(|(n, _)| n.clone())
        .chain(first.gauges.iter().map(|(n, _)| n.clone()))
        .chain(first.histograms.iter().map(|(n, _)| n.clone()))
        .collect()
}

fn series_values(r: &ObsReport, name: &str) -> Vec<(u64, f64)> {
    r.epochs
        .iter()
        .filter_map(|e| {
            if let Some((_, v)) = e.counters.iter().find(|(n, _)| n == name) {
                return Some((e.cycle, *v as f64));
            }
            if let Some((_, (_, high))) = e.gauges.iter().find(|(n, _)| n == name) {
                return Some((e.cycle, *high as f64));
            }
            e.histograms
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| (e.cycle, h.count() as f64))
        })
        .collect()
}

/// Plots the named series (all series when `names` is empty) as an SVG of
/// per-epoch polylines with a shared linear scale and a legend. Returns
/// `None` when the input has no epochs.
pub fn timeseries_svg(r: &ObsReport, names: &[String]) -> Option<String> {
    const PALETTE: [&str; 8] = [
        "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
    ];
    let all = series_names(r);
    if all.is_empty() {
        return None;
    }
    let selected: Vec<&String> = if names.is_empty() {
        all.iter().collect()
    } else {
        all.iter().filter(|n| names.contains(n)).collect()
    };
    let series: Vec<(&String, Vec<(u64, f64)>)> = selected
        .into_iter()
        .map(|n| (n, series_values(r, n)))
        .collect();
    let max_cycle = r.epochs.last().map_or(1, |e| e.cycle).max(1);
    let max_v = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, v)| v))
        .fold(1.0_f64, f64::max);
    let (w, h, ml, mb) = (720.0, 320.0, 60.0, 40.0);
    let (pw, ph) = (w - ml - 20.0, h - mb - 20.0);
    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         viewBox=\"0 0 {} {}\" font-family=\"monospace\" font-size=\"11\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n\
         <line x1=\"{ml}\" y1=\"20\" x2=\"{ml}\" y2=\"{}\" stroke=\"black\"/>\n\
         <line x1=\"{ml}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\"/>\n\
         <text x=\"{ml}\" y=\"14\">{max_v:.0}</text>\n\
         <text x=\"{}\" y=\"{}\">cycle {max_cycle}</text>\n",
        w,
        h + 14.0 * series.len() as f64,
        w,
        h + 14.0 * series.len() as f64,
        20.0 + ph,
        20.0 + ph,
        ml + pw,
        20.0 + ph,
        ml + pw - 80.0,
        20.0 + ph + 14.0,
    );
    for (i, (name, pts)) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let path: Vec<String> = pts
            .iter()
            .map(|&(c, v)| {
                let x = ml + pw * c as f64 / max_cycle as f64;
                let y = 20.0 + ph * (1.0 - v / max_v);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let _ = writeln!(
            svg,
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" points=\"{}\"/>",
            path.join(" ")
        );
        let ly = h + 14.0 * (i + 1) as f64 - 4.0;
        let _ = writeln!(
            svg,
            "<rect x=\"{ml}\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\
             <text x=\"{}\" y=\"{ly}\">{name}</text>",
            ly - 9.0,
            ml + 16.0,
        );
    }
    svg.push_str("</svg>\n");
    Some(svg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_epochs() -> String {
        let mut s = String::from("{\"upp_obs_epochs\":1,\"schema\":\"upp-obs/v1\"}\n");
        s.push_str(
            "{\"cycle\":100,\"counters\":{\"a.x\":3,\"b.y\":0},\
             \"gauges\":{\"g.d\":[2,5]},\
             \"histograms\":{\"h.l\":{\"count\":2,\"sum\":10,\"min\":4,\"max\":6,\"buckets\":[[4,1],[6,1]]}}}\n",
        );
        s.push_str(
            "{\"cycle\":200,\"counters\":{\"a.x\":7,\"b.y\":1},\
             \"gauges\":{\"g.d\":[1,3]},\
             \"histograms\":{\"h.l\":{\"count\":1,\"sum\":8,\"min\":8,\"max\":8,\"buckets\":[[8,1]]}}}\n",
        );
        s
    }

    #[test]
    fn epoch_stream_rebuilds_the_run_summary() {
        let r = ObsReport::parse(&sample_epochs()).unwrap();
        assert_eq!(r.epochs.len(), 2);
        let s = &r.summary;
        assert_eq!(s.cycle, 200);
        assert_eq!(s.counters, vec![("a.x".into(), 10), ("b.y".into(), 1)]);
        // Last sampled value, joined high-water.
        assert_eq!(s.gauges, vec![("g.d".into(), (1, 5))]);
        let (_, h) = &s.histograms[0];
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 18);
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn summary_document_parses_directly_and_via_json_payload() {
        let summary = "{\"upp_obs\":1,\"schema\":\"upp-obs/v1\",\"cycle\":42,\
             \"counters\":{\"a\":1},\"gauges\":{},\"histograms\":{}}";
        let r = ObsReport::parse(summary).unwrap();
        assert_eq!(r.summary.cycle, 42);
        assert!(r.epochs.is_empty());
        let wrapped = format!("{{\"outcome\":\"x\",\"obs\":{summary}}}");
        let r2 = ObsReport::parse(&wrapped).unwrap();
        assert_eq!(r2.summary, r.summary);
    }

    #[test]
    fn foreign_schema_versions_are_rejected() {
        let stale = "{\"upp_obs\":1,\"schema\":\"upp-obs/v0\",\"cycle\":1,\
             \"counters\":{},\"gauges\":{},\"histograms\":{}}";
        assert!(ObsReport::parse(stale)
            .unwrap_err()
            .contains("stale or foreign"));
        let stale_epochs = "{\"upp_obs_epochs\":1,\"schema\":\"upp-obs/v9\"}\n";
        assert!(ObsReport::parse(stale_epochs)
            .unwrap_err()
            .contains("stale or foreign"));
    }

    #[test]
    fn report_csv_and_svg_render() {
        let r = ObsReport::parse(&sample_epochs()).unwrap();
        let text = report_text(&r);
        assert!(text.contains("a.x"), "{text}");
        assert!(text.contains("2 epochs"), "{text}");
        let csv = timeseries_csv(&r).unwrap();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "cycle,a.x,b.y,g.d,g.d.high,h.l.count,h.l.mean"
        );
        assert_eq!(lines.next().unwrap(), "100,3,0,2,5,2,5.000");
        let svg = timeseries_svg(&r, &[]).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("a.x"));
        let one = timeseries_svg(&r, &["a.x".to_string()]).unwrap();
        assert!(!one.contains("b.y"), "filtered series must be absent");
    }
}
