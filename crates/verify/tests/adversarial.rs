//! The PR's acceptance campaign: differential cross-checking of all
//! recovery schemes over seeded random traffic and dynamic fault plans,
//! plus the "liar" check that an unprotected scheme is caught by the
//! scheme-independent oracle and shrunk to a replayable repro.

use upp_bench::sweep::SweepEngine;
use upp_verify::scenario::{random_scenario, CampaignParams};
use upp_verify::{oracle_for, run_differential, run_scenario, shrink, Scenario, Verdict};

const SCHEMES: [&str; 3] = ["UPP", "remote-control", "composable"];

/// CI-quick differential campaign: 100 seeded (traffic, fault-plan) points
/// on the 2-chiplet mini system, every recovery scheme, zero oracle
/// violations and byte-identical delivered multisets required.
#[test]
fn hundred_point_differential_campaign_is_clean() {
    let params = CampaignParams::default();
    let seeds: Vec<u64> = (0..100).collect();
    let engine = SweepEngine::new(upp_bench::sweep::default_jobs());
    let failures: Vec<String> = engine
        .map(&seeds, |_, &seed| {
            let base = random_scenario(&params, seed).expect("valid params");
            let diff = run_differential(&base, &SCHEMES, oracle_for(&base));
            diff.failures
                .iter()
                .map(|f| format!("seed {seed}: {f}"))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
    assert!(
        failures.is_empty(),
        "campaign found {} failure(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

fn liar_scenario() -> Scenario {
    let params = CampaignParams {
        rate: 0.25,
        horizon: 500,
        max_cycles: 4_000,
        link_faults: 1,
        throttles: 1,
        ..CampaignParams::default()
    };
    let mut sc = random_scenario(&params, 0).expect("valid params");
    sc.scheme = "none".into();
    sc
}

/// An intentionally-broken scheme (no recovery at all) under adversarial
/// load must be caught by the oracle — not merely time out — and the
/// shrinker must reduce it to a smaller scenario that still reproduces
/// after a JSON round trip.
#[test]
fn no_recovery_mutant_is_caught_and_shrunk_to_replayable_repro() {
    let sc = liar_scenario();
    let report = run_scenario(&sc, oracle_for(&sc));
    let Verdict::OracleViolation(v) = &report.verdict else {
        panic!(
            "oracle must catch the unprotected scheme, got {:?}",
            report.verdict
        );
    };
    assert!(!v.channels.is_empty(), "violation names the wait cycle");

    let reduced = shrink(
        &sc,
        |cand| {
            matches!(
                run_scenario(cand, oracle_for(cand)).verdict,
                Verdict::OracleViolation(_)
            )
        },
        24,
    );
    assert!(
        reduced.scenario.traffic.len() < sc.traffic.len(),
        "shrinker should drop traffic ({} -> {})",
        sc.traffic.len(),
        reduced.scenario.traffic.len()
    );

    // The minimal repro survives a JSON round trip and still fails.
    let mut artifact = reduced.scenario.clone();
    artifact.failure = report.failure();
    let replayed = Scenario::from_json(&artifact.to_json()).expect("artifact parses");
    let verdict = run_scenario(&replayed, oracle_for(&replayed)).verdict;
    assert!(
        matches!(verdict, Verdict::OracleViolation(_)),
        "replayed artifact must reproduce the violation, got {verdict:?}"
    );
}

/// The same traffic without the broken scheme drains cleanly — the liar
/// test's failure is the scheme's fault, not the scenario's.
#[test]
fn liar_scenario_is_survivable_with_recovery() {
    let mut sc = liar_scenario();
    sc.scheme = "UPP".into();
    let report = run_scenario(&sc, oracle_for(&sc));
    assert!(
        report.failure().is_none(),
        "UPP must survive the liar scenario: {:?}",
        report.failure()
    );
}
