//! # upp-noc — chiplet/interposer NoC simulation substrate
//!
//! A cycle-accurate network-on-chip simulator for modular chiplet-based
//! systems on active interposers, built as the substrate for reproducing
//! *"Upward Packet Popup for Deadlock Freedom in Modular Chiplet-Based
//! Systems"* (HPCA 2022).
//!
//! The simulator models:
//!
//! * chiplet meshes stacked over an interposer mesh with vertical links
//!   ([`topology`]);
//! * three-legged routing with static nearest-boundary binding
//!   ([`routing`]);
//! * wormhole flow control over virtual networks/virtual channels with a
//!   3-stage router pipeline and credit-based backpressure ([`router`]);
//! * network interfaces with per-VNet injection/ejection queues and an
//!   ejection-entry reservation mechanism ([`ni`]);
//! * the control-plane datapath (dedicated 32-bit signal buffers, circuit
//!   bypass, popup priority) that `upp-core` drives ([`control`],
//!   [`network`]);
//! * deadlock-freedom schemes as pluggable policies ([`scheme`], [`sim`]).
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use upp_noc::config::NocConfig;
//! use upp_noc::ids::VnetId;
//! use upp_noc::network::Network;
//! use upp_noc::ni::ConsumePolicy;
//! use upp_noc::routing::ChipletRouting;
//! use upp_noc::scheme::NoScheme;
//! use upp_noc::sim::{RunOutcome, System};
//! use upp_noc::topology::ChipletSystemSpec;
//!
//! // The baseline system of the paper's Fig. 1.
//! let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
//! let net = Network::new(
//!     NocConfig::default(),
//!     topo,
//!     Arc::new(ChipletRouting::xy()),
//!     ConsumePolicy::Immediate { latency: 1 },
//!     7,
//! );
//! let mut sys = System::new(net, Box::new(NoScheme));
//! let src = sys.net().topo().chiplets()[0].routers[0];
//! let dest = sys.net().topo().chiplets()[3].routers[15];
//! sys.send(src, dest, VnetId(0), 5).expect("queue has space");
//! assert!(matches!(sys.run_until_drained(1_000), RunOutcome::Drained { .. }));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod control;
pub mod event;
pub mod fault;
pub mod ids;
pub mod network;
pub mod ni;
pub mod obs;
pub mod packet;
pub mod profile;
pub mod ring;
pub mod router;
pub mod routing;
pub mod scheme;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod viz;
pub mod watch;

pub use config::NocConfig;
pub use fault::{FaultAction, FaultEvent, FaultPlan};
pub use ids::{ChipletId, Cycle, NodeId, PacketId, Port, VcId, VnetId};
pub use network::Network;
pub use obs::{CounterId, GaugeId, HistId, ObsHistogram, ObsRegistry, ObsSnapshot};
pub use profile::{PacketSpan, SpanRecorder};
pub use scheme::{NoScheme, Scheme, SchemeProperties};
pub use sim::{RunOutcome, System};
pub use trace::{
    validate_metrics_csv, MetricsSampler, MetricsSnapshot, StallReport, TraceEvent, TraceSink,
    Tracer, METRICS_SCHEMA,
};
