//! Composable routing (Yin et al., ISCA'18) — the turn-restriction baseline.
//!
//! Each chiplet abstracts the rest of the system into a *virtual node* and
//! places unidirectional turn restrictions on its boundary routers until the
//! extended channel dependency graph (internal XY channels + virtual-node
//! channels) is acyclic (Sec. III-B of the UPP paper). The restrictions
//! remove vertical-turn options, so inter-chiplet packets are funnelled
//! through a subset of boundary routers — the path-diversity and load-balance
//! loss the paper measures against.
//!
//! The published outcome (Fig. 2(a)) funnels inter-chiplet traffic through a
//! subset of boundary routers. [`ComposableConfig::build`] reproduces that
//! structure constructively: entering traffic is admitted at half of the
//! boundary routers, and exit turns are forbidden exactly where the
//! entering-traffic reachable channel set could close a cycle — which is
//! acyclic by construction and verified against the extended CDG. A
//! cycle-driven backtracking search ([`ComposableConfig::build_balanced`])
//! is kept as an ablation: it finds *minimal* restriction sets that cost
//! almost nothing, quantifying how much of composable's published penalty
//! comes from its restriction structure.

use std::collections::HashMap;
use std::sync::Arc;
use upp_noc::ids::{NodeId, Port};
use upp_noc::network::Network;
use upp_noc::obs::GaugeId;
use upp_noc::routing::turns::{Channel, ExtendedCdg, TurnRestrictions};
use upp_noc::routing::xy::{xy_arrival_port, xy_departure_port};
use upp_noc::routing::{BoundarySelector, ChipletRouting};
use upp_noc::scheme::{Scheme, SchemeProperties};
use upp_noc::topology::Topology;

/// Errors from the restriction search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposableError {
    /// No restriction set keeps the chiplet both acyclic and connected.
    NoSolution {
        /// Chiplet whose search failed.
        chiplet: usize,
    },
}

impl std::fmt::Display for ComposableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSolution { chiplet } => {
                write!(
                    f,
                    "no acyclic connected turn-restriction set for chiplet {chiplet}"
                )
            }
        }
    }
}

impl std::error::Error for ComposableError {}

/// The computed composable-routing configuration for one system.
#[derive(Debug, Clone)]
pub struct ComposableConfig {
    restrictions: TurnRestrictions,
    /// `(source, allowed exit boundary)` choices, precomputed per node.
    exit_of: HashMap<NodeId, NodeId>,
    /// `(destination, allowed entry boundary)` choices, precomputed.
    entry_of: HashMap<NodeId, NodeId>,
}

impl ComposableConfig {
    /// Builds the paper-style (funneled) restriction sets for every chiplet
    /// of `topo`, falling back to the backtracking search when the
    /// constructive pattern cannot keep a chiplet connected.
    ///
    /// # Errors
    ///
    /// Returns [`ComposableError`] when some chiplet admits no valid set —
    /// not observed for any of the paper's system shapes.
    pub fn build(topo: &Topology) -> Result<Self, ComposableError> {
        let mut restrictions = TurnRestrictions::new();
        for (ci, _) in topo.chiplets().iter().enumerate() {
            let local = funneled_restrictions(topo, ci).map_or_else(
                || {
                    let mut r = TurnRestrictions::new();
                    search(topo, ci, &mut r, 0).then_some(r)
                },
                Some,
            );
            let Some(local) = local else {
                return Err(ComposableError::NoSolution { chiplet: ci });
            };
            for (n, i, o) in local.iter() {
                restrictions.forbid(n, i, o);
            }
        }
        Self::finish(topo, restrictions)
    }

    /// Runs the minimal backtracking search over every chiplet (the
    /// ablation variant: provably acyclic but far less restrictive than the
    /// published structure).
    ///
    /// # Errors
    ///
    /// Returns [`ComposableError`] when some chiplet admits no valid set.
    pub fn build_balanced(topo: &Topology) -> Result<Self, ComposableError> {
        let mut restrictions = TurnRestrictions::new();
        for (ci, _) in topo.chiplets().iter().enumerate() {
            let mut local = TurnRestrictions::new();
            if !search(topo, ci, &mut local, 0) {
                return Err(ComposableError::NoSolution { chiplet: ci });
            }
            for (n, i, o) in local.iter() {
                restrictions.forbid(n, i, o);
            }
        }
        Self::finish(topo, restrictions)
    }

    fn finish(topo: &Topology, restrictions: TurnRestrictions) -> Result<Self, ComposableError> {
        // Verify acyclicity of every chiplet's extended CDG (defence in
        // depth: both constructions guarantee it).
        for c in topo.chiplets() {
            debug_assert!(
                ExtendedCdg::build(topo, c.id, &restrictions).is_acyclic(),
                "composable restriction set left a cycle in chiplet {}",
                c.id
            );
        }
        // Precompute selections under the final restriction set.
        let mut exit_of = HashMap::new();
        let mut entry_of = HashMap::new();
        for (ci, c) in topo.chiplets().iter().enumerate() {
            for &r in &c.routers {
                let Some(exit) = pick_boundary(topo, &restrictions, &c.boundary_routers, r, true)
                else {
                    return Err(ComposableError::NoSolution { chiplet: ci });
                };
                let Some(entry) = pick_boundary(topo, &restrictions, &c.boundary_routers, r, false)
                else {
                    return Err(ComposableError::NoSolution { chiplet: ci });
                };
                exit_of.insert(r, exit);
                entry_of.insert(r, entry);
            }
        }
        Ok(Self {
            restrictions,
            exit_of,
            entry_of,
        })
    }

    /// The restriction set (for analyses, Table I style reporting and
    /// tests).
    pub fn restrictions(&self) -> &TurnRestrictions {
        &self.restrictions
    }

    /// The chiplet routing object to install into the network.
    pub fn routing(self: &Arc<Self>) -> ChipletRouting {
        ChipletRouting::with_selector(Arc::new(ComposableSelector {
            cfg: Arc::clone(self),
        }))
    }

    /// The exit boundary chosen for packets injected at `src`.
    pub fn exit_boundary_of(&self, src: NodeId) -> Option<NodeId> {
        self.exit_of.get(&src).copied()
    }

    /// The entry boundary chosen for packets destined to `dest`.
    pub fn entry_boundary_of(&self, dest: NodeId) -> Option<NodeId> {
        self.entry_of.get(&dest).copied()
    }

    /// How many sources funnel through each exit boundary (load-imbalance
    /// diagnostic matching the paper's router-2 observation).
    pub fn exit_load_histogram(&self) -> HashMap<NodeId, usize> {
        let mut h = HashMap::new();
        for &b in self.exit_of.values() {
            *h.entry(b).or_insert(0) += 1;
        }
        h
    }
}

/// Exit legality: an XY-routed packet from `s` may descend at `b`.
fn exit_allowed(topo: &Topology, r: &TurnRestrictions, s: NodeId, b: NodeId) -> bool {
    let arr = xy_arrival_port(topo, s, b);
    arr == Port::Local || r.allows(b, arr, Port::Down)
}

/// Entry legality: a packet ascending at `b` may XY-route to `d`.
fn entry_allowed(topo: &Topology, r: &TurnRestrictions, b: NodeId, d: NodeId) -> bool {
    let dep = xy_departure_port(topo, b, d);
    dep == Port::Local || r.allows(b, Port::Down, dep)
}

fn connectivity_ok(topo: &Topology, chiplet: usize, r: &TurnRestrictions) -> bool {
    let c = &topo.chiplets()[chiplet];
    c.routers.iter().all(|&s| {
        c.boundary_routers
            .iter()
            .any(|&b| exit_allowed(topo, r, s, b))
    }) && c.routers.iter().all(|&d| {
        c.boundary_routers
            .iter()
            .any(|&b| entry_allowed(topo, r, b, d))
    })
}

/// Boundary-turn edges of a CDG cycle, i.e. the restrictable turns.
fn cycle_turns(topo: &Topology, cycle: &[Channel]) -> Vec<(NodeId, Port, Port)> {
    let mut out = Vec::new();
    for i in 0..cycle.len() {
        let a = cycle[i];
        let b = cycle[(i + 1) % cycle.len()];
        match (a, b) {
            (Channel::ExtIn { boundary }, Channel::Internal { from, out: q })
                if from == boundary =>
            {
                out.push((boundary, Port::Down, q));
            }
            (Channel::Internal { from, out: p }, Channel::ExtOut { boundary })
                if topo.neighbor(from, p) == Some(boundary) =>
            {
                out.push((boundary, p.opposite(), Port::Down));
            }
            _ => {}
        }
    }
    // Prefer restricting exits (into Down) first: this funnels outgoing
    // traffic like the published algorithm does.
    out.sort_by_key(|&(_, _, o)| if o == Port::Down { 0 } else { 1 });
    out
}

/// Constructs the published funneled restriction structure for one chiplet:
/// entering traffic is admitted only at half of the boundary routers
/// (maximally separated, lowest-id first), and every exit turn whose arrival
/// channel is reachable from the admitted entry channels is forbidden. Any
/// remaining dependency path `ExtIn -> ... -> ExtOut` is impossible by
/// construction, so the extended CDG is acyclic. Returns `None` when the
/// pattern would disconnect some source from every exit (the caller then
/// falls back to the search).
fn funneled_restrictions(topo: &Topology, chiplet: usize) -> Option<TurnRestrictions> {
    let info = &topo.chiplets()[chiplet];
    let cid = info.id;
    let boundaries = &info.boundary_routers;
    let entry_count = (boundaries.len() / 2).max(1);

    // Pick maximally-separated entry boundaries greedily.
    let mut entries: Vec<NodeId> = Vec::new();
    let mut sorted = boundaries.clone();
    sorted.sort_unstable();
    entries.push(sorted[0]);
    while entries.len() < entry_count {
        let next = sorted
            .iter()
            .copied()
            .filter(|b| !entries.contains(b))
            .max_by_key(|&b| {
                (
                    entries
                        .iter()
                        .map(|&e| topo.manhattan(e, b))
                        .min()
                        .unwrap_or(0),
                    std::cmp::Reverse(b),
                )
            })?;
        entries.push(next);
    }

    let mut r = TurnRestrictions::new();
    // Non-entry boundaries admit nothing from below.
    for &b in boundaries {
        if entries.contains(&b) {
            continue;
        }
        for p in Port::ALL {
            if p.is_mesh() {
                r.forbid(b, Port::Down, p);
            }
        }
    }

    // Channels reachable from the admitted entry links under XY.
    let cdg = ExtendedCdg::build(topo, cid, &r);
    let mut reachable: std::collections::HashSet<Channel> = std::collections::HashSet::new();
    for &e in &entries {
        reachable.extend(cdg.reachable(Channel::ExtIn { boundary: e }));
    }

    // Forbid every exit turn whose arrival channel is reachable from an
    // entry: no ExtIn -> ExtOut path can survive.
    for &b in boundaries {
        for p in Port::ALL {
            if !p.is_mesh() {
                continue;
            }
            let Some(peer) = topo.neighbor(b, p) else {
                continue;
            };
            if topo.chiplet_of(peer) != Some(cid) {
                continue;
            }
            let arrival = Channel::Internal {
                from: peer,
                out: p.opposite(),
            };
            if reachable.contains(&arrival) {
                r.forbid(b, p, Port::Down);
            }
        }
    }

    if connectivity_ok(topo, chiplet, &r) && ExtendedCdg::build(topo, cid, &r).is_acyclic() {
        Some(r)
    } else {
        None
    }
}

fn search(topo: &Topology, chiplet: usize, r: &mut TurnRestrictions, depth: usize) -> bool {
    if depth > 64 {
        return false;
    }
    let cid = topo.chiplets()[chiplet].id;
    let cdg = ExtendedCdg::build(topo, cid, r);
    let Some(cycle) = cdg.find_cycle() else {
        return true;
    };
    for (n, i, o) in cycle_turns(topo, &cycle) {
        if !r.allows(n, i, o) {
            continue;
        }
        r.forbid(n, i, o);
        if connectivity_ok(topo, chiplet, r) && search(topo, chiplet, r, depth + 1) {
            return true;
        }
        r.allow(n, i, o);
    }
    false
}

fn pick_boundary(
    topo: &Topology,
    r: &TurnRestrictions,
    boundaries: &[NodeId],
    node: NodeId,
    exit: bool,
) -> Option<NodeId> {
    boundaries
        .iter()
        .copied()
        .filter(|&b| {
            if exit {
                exit_allowed(topo, r, node, b)
            } else {
                entry_allowed(topo, r, b, node)
            }
        })
        .min_by_key(|&b| (topo.manhattan(node, b), b))
}

#[derive(Debug)]
struct ComposableSelector {
    cfg: Arc<ComposableConfig>,
}

impl BoundarySelector for ComposableSelector {
    fn exit_boundary(&self, _topo: &Topology, src: NodeId, _dest: NodeId) -> NodeId {
        self.cfg
            .exit_of
            .get(&src)
            .copied()
            .unwrap_or_else(|| panic!("no exit boundary precomputed for {src}"))
    }

    fn entry_boundary(&self, _topo: &Topology, _src: NodeId, dest: NodeId) -> NodeId {
        self.cfg
            .entry_of
            .get(&dest)
            .copied()
            .unwrap_or_else(|| panic!("no entry boundary precomputed for {dest}"))
    }
}

/// Pre-registered telemetry ids (`Some` only while the network's obs
/// registry is enabled).
#[derive(Debug, Clone, Copy)]
struct ComposableObs {
    /// Total flits queued in Down-port input VCs at boundary routers.
    dateline_flits: GaugeId,
    /// Deepest single Down-port input VC among those.
    dateline_max: GaugeId,
}

/// The composable-routing scheme object (routing does all the work; the
/// scheme itself is pure metadata).
#[derive(Debug, Clone)]
pub struct Composable {
    cfg: Arc<ComposableConfig>,
    obs: Option<ComposableObs>,
}

impl Composable {
    /// Builds the scheme and its routing for `topo`.
    ///
    /// # Errors
    ///
    /// See [`ComposableConfig::build`].
    pub fn build(topo: &Topology) -> Result<(Self, ChipletRouting), ComposableError> {
        let cfg = Arc::new(ComposableConfig::build(topo)?);
        let routing = cfg.routing();
        Ok((Self { cfg, obs: None }, routing))
    }

    /// The underlying configuration.
    pub fn config(&self) -> &Arc<ComposableConfig> {
        &self.cfg
    }
}

impl Scheme for Composable {
    fn name(&self) -> &'static str {
        "composable"
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            topology_modularity: true,
            vc_modularity: true,
            flow_control_modularity: true,
            full_path_diversity: false, // excessive boundary turn restrictions
            no_injection_control: true,
            topology_independence: false, // design-time exponential search
        }
    }

    fn advance_to(
        &mut self,
        _net: &upp_noc::network::Network,
        _from: upp_noc::ids::Cycle,
        _to: upp_noc::ids::Cycle,
    ) -> bool {
        // All of composable's work happens at route-computation time; it has
        // no per-cycle state, so fast-forwarding a quiescent gap is always
        // cycle-exact. (Spelled out rather than inherited to document that
        // the default was considered, not overlooked.)
        true
    }

    fn observe(&mut self, net: &mut Network) {
        if !net.obs().is_enabled() {
            return;
        }
        if self.obs.is_none() {
            let o = net.obs_mut();
            self.obs = Some(ComposableObs {
                dateline_flits: o.gauge("composable.dateline_vc.flits"),
                dateline_max: o.gauge("composable.dateline_vc.max"),
            });
        }
        let Some(o) = self.obs else { return };
        // Composable has no dateline VCs in the literal (torus) sense; its
        // pressure point is the boundary funnel: the turn restrictions
        // concentrate inter-chiplet traffic through a subset of boundary
        // routers, so the Down-port input VCs there — where ascending
        // packets land — are the structure whose occupancy grows with
        // system size. Sampled on the same axes as UPP's circuit table and
        // remote control's permit queues so `fig_scaling` can compare the
        // three schemes directly.
        let mut flits = 0u64;
        let mut deepest = 0u64;
        let boundaries: Vec<NodeId> = net
            .topo()
            .chiplets()
            .iter()
            .flat_map(|c| c.boundary_routers.iter().copied())
            .collect();
        for b in boundaries {
            let r = net.router(b);
            for (p, f) in r.input_vcs() {
                if p != Port::Down {
                    continue;
                }
                let len = r.vc_buf_len(p, f) as u64;
                flits += len;
                deepest = deepest.max(len);
            }
        }
        let obs = net.obs_mut();
        obs.gauge_set(o.dateline_flits, flits);
        obs.gauge_set(o.dateline_max, deepest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upp_noc::ids::ChipletId;
    use upp_noc::topology::{ChipletSystemSpec, SystemKind};

    #[test]
    fn baseline_search_succeeds_and_is_acyclic() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let cfg = ComposableConfig::build(&topo).unwrap();
        for c in topo.chiplets() {
            let cdg = ExtendedCdg::build(&topo, c.id, cfg.restrictions());
            assert!(
                cdg.is_acyclic(),
                "chiplet {} extended CDG must be acyclic",
                c.id
            );
        }
        assert!(
            !cfg.restrictions().is_empty(),
            "some turns must be restricted"
        );
    }

    #[test]
    fn all_system_kinds_admit_solutions() {
        for kind in [
            SystemKind::Baseline,
            SystemKind::Large,
            SystemKind::BoundaryCount(2),
            SystemKind::BoundaryCount(8),
        ] {
            let topo = ChipletSystemSpec::of_kind(kind).build(0).unwrap();
            let cfg = ComposableConfig::build(&topo).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            for c in topo.chiplets() {
                assert!(ExtendedCdg::build(&topo, c.id, cfg.restrictions()).is_acyclic());
            }
        }
    }

    #[test]
    fn selections_are_legal_and_total() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let cfg = ComposableConfig::build(&topo).unwrap();
        for c in topo.chiplets() {
            for &n in &c.routers {
                let e = cfg.exit_boundary_of(n).unwrap();
                assert!(exit_allowed(&topo, cfg.restrictions(), n, e));
                let i = cfg.entry_boundary_of(n).unwrap();
                assert!(entry_allowed(&topo, cfg.restrictions(), i, n));
            }
        }
    }

    #[test]
    fn restrictions_lengthen_routes() {
        // The paper's motivation: restricted vertical turns force some
        // packets onto longer paths than the static nearest-boundary
        // binding would give them. Compare total (src -> exit) + (entry ->
        // dest) distance against the unrestricted binding.
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let cfg = ComposableConfig::build(&topo).unwrap();
        let mut composable_hops = 0u32;
        let mut binding_hops = 0u32;
        for c in topo.chiplets() {
            for &n in &c.routers {
                composable_hops += topo.manhattan(n, cfg.exit_boundary_of(n).unwrap());
                composable_hops += topo.manhattan(n, cfg.entry_boundary_of(n).unwrap());
                binding_hops += 2 * topo.manhattan(n, topo.bound_boundary(n));
            }
        }
        assert!(
            composable_hops > binding_hops,
            "restrictions must cost hops: composable {composable_hops} vs binding {binding_hops}"
        );
        // And some vertical-turn freedom must be lost on every chiplet.
        for c in topo.chiplets() {
            let lost = cfg
                .restrictions()
                .iter()
                .filter(|&(n, _, _)| c.boundary_routers.contains(&n))
                .count();
            assert!(lost > 0, "chiplet {} lost no turns", c.id);
        }
    }

    #[test]
    fn routing_traces_avoid_restricted_vertical_turns() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let (scheme, routing) = Composable::build(&topo).unwrap();
        let r = scheme.config().restrictions().clone();
        use upp_noc::routing::{trace_route, RouteComputer};
        let _: &dyn RouteComputer = &routing;
        let srcs = topo.chiplet(ChipletId(0)).routers.clone();
        let dsts = topo.chiplet(ChipletId(3)).routers.clone();
        for &s in &srcs {
            for &d in dsts.iter().step_by(3) {
                let hops = trace_route(&topo, &routing, s, d);
                let mut in_port = Port::Local;
                for &(n, p) in &hops {
                    if p != Port::Local {
                        assert!(
                            r.allows(n, in_port, p),
                            "route {s}->{d} violates restriction at {n}: {in_port}->{p}"
                        );
                        in_port = p.opposite();
                    }
                }
            }
        }
    }

    #[test]
    fn composable_is_not_fully_path_diverse() {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let (scheme, _) = Composable::build(&topo).unwrap();
        let p = scheme.properties();
        assert!(!p.full_path_diversity);
        assert!(!p.topology_independence);
        assert!(p.topology_modularity && p.vc_modularity && p.flow_control_modularity);
    }
}
