//! Property tests over topologies and routing: every route terminates at its
//! destination, never uses faulty links, crosses the vertical boundary the
//! right number of times, and the static binding invariant of Sec. V-D holds
//! for every seed.

use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use upp_noc::ids::{NodeId, Port};
use upp_noc::routing::{trace_route, ChipletRouting, RouteComputer, RouteTables};
use upp_noc::topology::{
    chiplet::inject_random_faults, ChipletSystemSpec, Region, SystemKind, Topology,
};

/// Nodes of `region` reachable from `src` over live (non-faulty) links,
/// ignoring turn restrictions: physical connectivity, the upper bound on
/// what any routing function could reach.
fn live_reachable(topo: &Topology, region: Region, src: NodeId) -> HashSet<NodeId> {
    let members: HashSet<NodeId> = topo.region_nodes(region).iter().copied().collect();
    let mut seen = HashSet::from([src]);
    let mut q = VecDeque::from([src]);
    while let Some(n) = q.pop_front() {
        for p in Port::ALL {
            if !p.is_mesh() {
                continue;
            }
            if let Some(m) = topo.neighbor(n, p) {
                if members.contains(&m) && seen.insert(m) {
                    q.push_back(m);
                }
            }
        }
    }
    seen
}

fn system_kind() -> impl Strategy<Value = SystemKind> {
    prop_oneof![
        Just(SystemKind::Baseline),
        Just(SystemKind::Large),
        Just(SystemKind::BoundaryCount(2)),
        Just(SystemKind::BoundaryCount(8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn topologies_validate_for_any_seed(kind in system_kind(), seed in 0u64..1_000) {
        let topo = ChipletSystemSpec::of_kind(kind).build(seed).expect("spec builds");
        topo.validate().expect("built topologies validate");
        // Binding is minimal-distance for every router.
        for c in topo.chiplets() {
            for &r in &c.routers {
                let d = topo.manhattan(r, topo.bound_boundary(r));
                for &b in &c.boundary_routers {
                    prop_assert!(topo.manhattan(r, b) >= d);
                }
            }
        }
    }

    #[test]
    fn xy_routes_terminate_and_cross_once(
        kind in system_kind(),
        seed in 0u64..100,
        si in 0usize..4096,
        di in 0usize..4096,
    ) {
        let topo = ChipletSystemSpec::of_kind(kind).build(seed).expect("spec builds");
        let nodes: Vec<_> = topo.nodes().iter().map(|n| n.id).collect();
        let (src, dest) = (nodes[si % nodes.len()], nodes[di % nodes.len()]);
        prop_assume!(src != dest);
        let routing = ChipletRouting::xy();
        let hops = trace_route(&topo, &routing, src, dest);
        prop_assert_eq!(hops.last().map(|&(n, _)| n), Some(dest));
        let downs = hops.iter().filter(|&&(_, p)| p == Port::Down).count();
        let ups = hops.iter().filter(|&&(_, p)| p == Port::Up).count();
        let plan = routing.plan(&topo, src, dest);
        prop_assert_eq!(downs, usize::from(plan.class.descends()));
        prop_assert_eq!(ups, usize::from(plan.class.ascends()));
    }

    #[test]
    fn faulty_routes_avoid_failed_links(
        faults in 1usize..16,
        fault_seed in 0u64..50,
        si in 0usize..4096,
        di in 0usize..4096,
    ) {
        let mut topo = ChipletSystemSpec::baseline().build(0).expect("spec builds");
        prop_assume!(inject_random_faults(&mut topo, faults, fault_seed).is_ok());
        let tables = Arc::new(RouteTables::build(&topo));
        let routing = ChipletRouting::with_tables(tables);
        let nodes: Vec<_> = topo.nodes().iter().map(|n| n.id).collect();
        let (src, dest) = (nodes[si % nodes.len()], nodes[di % nodes.len()]);
        prop_assume!(src != dest);
        let hops = trace_route(&topo, &routing, src, dest);
        for &(n, p) in &hops {
            if p != Port::Local {
                prop_assert!(!topo.is_link_faulty(n, p), "route uses faulty {n}:{p}");
            }
        }
        prop_assert_eq!(hops.last().map(|&(n, _)| n), Some(dest));
    }

    #[test]
    fn tables_under_arbitrary_faults_stay_live_and_explicit(
        nfaults in 0usize..24,
        fault_seed in 0u64..1_000,
        ri in 0usize..8,
        si in 0usize..4096,
        di in 0usize..4096,
    ) {
        // Unlike `faulty_routes_avoid_failed_links`, the fault set here is
        // arbitrary: it may cut a region in two or violate the invariants
        // that `inject_random_faults` preserves. Whatever the damage, the
        // tables must (a) never route over a dead link, (b) reach every
        // destination that is physically reachable over live links, and
        // (c) report anything else as an explicit `None` — never a silent
        // loop.
        let mut topo = ChipletSystemSpec::baseline().build(0).expect("spec builds");
        let mesh_links: Vec<(NodeId, Port)> = topo
            .nodes()
            .iter()
            .flat_map(|n| {
                Port::ALL
                    .into_iter()
                    .filter(|p| p.is_mesh())
                    .filter(|&p| topo.raw_neighbor(n.id, p).is_some())
                    .map(move |p| (n.id, p))
            })
            .collect();
        // splitmix64 stream over `fault_seed` picks arbitrary links, with no
        // attempt to keep the topology valid or even connected.
        let mut s = fault_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for _ in 0..nfaults {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let (n, p) = mesh_links[(z ^ (z >> 31)) as usize % mesh_links.len()];
            topo.set_link_faulty(n, p);
        }

        let tables = RouteTables::build(&topo);
        if topo.validate().is_ok() {
            // Fault sets that keep the topology valid must keep every
            // region fully routable.
            prop_assert!(tables.verify_full_connectivity(&topo).is_ok());
        }

        let mut regions: Vec<Region> =
            topo.chiplets().iter().map(|c| Region::Chiplet(c.id)).collect();
        regions.push(Region::Interposer);
        let region = regions[ri % regions.len()];
        let members = topo.region_nodes(region).to_vec();
        let (src, dest) = (members[si % members.len()], members[di % members.len()]);
        prop_assume!(src != dest);

        let reachable = live_reachable(&topo, region, src);
        let hop_bound = members.len() * Port::ALL.len();
        let (mut node, mut in_port) = (src, Port::Local);
        let mut arrived = false;
        for _ in 0..=hop_bound {
            if node == dest {
                arrived = true;
                break;
            }
            let Some(p) = tables.next_port(node, in_port, dest) else {
                // Explicit unreachability: must only be claimed when the
                // destination really is cut off over live links.
                prop_assert!(
                    !reachable.contains(&dest),
                    "tables claim {dest} unreachable from {node} but live links connect it"
                );
                break;
            };
            prop_assert!(p.is_mesh(), "next_port yielded non-mesh {p} short of {dest}");
            prop_assert!(!topo.is_link_faulty(node, p), "route uses faulty {node}:{p}");
            let next = topo.neighbor(node, p);
            prop_assert!(next.is_some(), "route walks off a dead/absent link at {node}:{p}");
            in_port = p.opposite();
            node = next.unwrap();
        }
        if reachable.contains(&dest) {
            prop_assert!(arrived, "silent loop: never reached {dest} from {src} in {hop_bound} hops");
        } else {
            prop_assert!(!arrived, "reached {dest} which live links cannot connect");
        }
    }

    #[test]
    fn entry_binding_is_destination_determined(
        seed in 0u64..100,
        di in 0usize..64,
        s1 in 0usize..64,
        s2 in 0usize..64,
    ) {
        // Sec. V-D: all packets to one chiplet router enter its chiplet via
        // the same interposer router, regardless of source.
        let topo = ChipletSystemSpec::baseline().build(seed).expect("spec builds");
        let cores: Vec<_> = topo
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect();
        let dest = cores[di % cores.len()];
        let routing = ChipletRouting::xy();
        let mut entries = Vec::new();
        for &src in &[cores[s1 % cores.len()], cores[s2 % cores.len()]] {
            if topo.chiplet_of(src) == topo.chiplet_of(dest) {
                continue;
            }
            entries.push(routing.plan(&topo, src, dest).entry_interposer);
        }
        entries.dedup();
        prop_assert!(entries.len() <= 1, "entry interposer must be unique per destination");
    }
}
