//! Network interface (NI): injection and ejection queues, the PE-facing
//! message API, and the ejection-entry reservation mechanism UPP's protocol
//! uses (Sec. V-B).

use crate::config::NocConfig;
use crate::control::DeliveredControl;
use crate::ids::{Cycle, NodeId, PacketId, VcId, VnetId};
use crate::packet::{Flit, Packet, PacketArena, PacketRef, RouteInfo};
use crate::ring::RingBank;
use serde::{Deserialize, Serialize};

/// Injection-permit state of a pending packet (mechanism for remote
/// control's injection control; `NotNeeded` for every other scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PermitState {
    /// The packet may inject freely.
    NotNeeded,
    /// The packet must wait for a boundary-buffer reservation grant.
    Waiting,
    /// Reservation granted; the packet may inject.
    Granted,
}

/// A packet waiting in an NI injection queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingPacket {
    /// The packet.
    pub pkt: Packet,
    /// Its planned route.
    pub route: RouteInfo,
    /// Injection-control state.
    pub permit: PermitState,
    /// Arena handle of the packet's interned descriptor.
    pub desc: PacketRef,
}

/// A packet currently being streamed into the router, one flit per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ActiveInjection {
    desc: PacketRef,
    len_flits: u16,
    vc_flat: usize,
    next_seq: u16,
}

/// Per-output-VC state mirrored at the sender (credits + ownership), used by
/// both NIs (toward the router's Local input VCs) and routers (toward
/// downstream input VCs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutVcState {
    /// Free buffer slots at the downstream VC.
    pub credits: usize,
    /// True while a packet owns the downstream VC (head sent, tail not yet
    /// drained downstream).
    pub busy: bool,
}

impl OutVcState {
    /// Fresh state with `depth` credits.
    pub fn new(depth: usize) -> Self {
        Self {
            credits: depth,
            busy: false,
        }
    }
}

/// A fully-assembled packet awaiting PE consumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivered {
    /// Packet identity and metadata.
    pub pkt: Packet,
    /// Cycle the tail flit arrived.
    pub completed_at: Cycle,
    /// True if the packet arrived (at least partly) as popped-up upward
    /// flits.
    pub via_popup: bool,
}

/// How the PE consumes delivered packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsumePolicy {
    /// Consume every delivered packet `latency` cycles after completion
    /// (synthetic traffic; messages are always terminating).
    Immediate {
        /// Cycles between completion and consumption.
        latency: u64,
    },
    /// The workload pops delivered packets explicitly via
    /// [`Ni::pop_delivered`] and frees entries itself (coherence engine,
    /// which implements the request-consumption rule of Sec. V-B4).
    External,
}

/// In-progress reassembly of one packet, keyed by its descriptor handle in
/// the NI's bounded assembly table (at most one per claimed ejection entry).
#[derive(Debug, Clone, Copy)]
struct Assembly {
    desc: PacketRef,
    received: u16,
    via_popup: bool,
}

/// One network interface.
///
/// An NI owns per-VNet injection queues of whole packets and per-VNet
/// ejection queues of `ejection_queue_entries` packet-sized entries; entries
/// are claimed when the router allocates the Local output VC (or when UPP
/// pops a packet up) and released when the PE consumes the packet.
pub struct Ni {
    node: NodeId,
    num_vnets: usize,
    eq_capacity: usize,
    inj_capacity: usize,
    inj_queues: RingBank<PendingPacket>,
    active: Vec<Option<ActiveInjection>>,
    /// Queued packets plus in-flight injections across all VNets; lets
    /// `inject_step` skip the VNet scan entirely on idle NIs.
    backlog: usize,
    /// Credits/ownership toward the router's Local input VCs, flat-indexed.
    out_vcs: Vec<OutVcState>,
    rr_vnet: usize,
    /// Bounded reassembly table (each entry holds a claimed ejection entry,
    /// so occupancy never exceeds `num_vnets * eq_capacity`); linear scans
    /// over a handful of entries beat hashing here.
    assembly: Vec<Assembly>,
    delivered: RingBank<Delivered>,
    in_use: Vec<usize>,
    upp_reserved: Vec<usize>,
    consume: ConsumePolicy,
    control_inbox: Vec<DeliveredControl>,
    /// Dynamic-fault throttle: while set, `inject_step` emits nothing
    /// (queued packets stay queued).
    injection_paused: bool,
    /// Dynamic-fault throttle: while set, the Immediate consumption policy
    /// stops draining delivered packets (External workloads poll
    /// [`Ni::consumption_paused`] themselves).
    consumption_paused: bool,
}

impl std::fmt::Debug for Ni {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ni")
            .field("node", &self.node)
            .field("in_use", &self.in_use)
            .field("upp_reserved", &self.upp_reserved)
            .finish_non_exhaustive()
    }
}

/// Never-read ring fill for queues of packet-shaped entries.
fn fill_packet() -> Packet {
    Packet {
        id: PacketId(u64::MAX),
        src: NodeId(0),
        dest: NodeId(0),
        vnet: VnetId(0),
        len_flits: 1,
        created_at: 0,
    }
}

impl Ni {
    /// Builds the NI for `node`.
    pub fn new(node: NodeId, cfg: &NocConfig, consume: ConsumePolicy) -> Self {
        let vcs = cfg.vcs_per_port();
        let pending_fill = PendingPacket {
            pkt: fill_packet(),
            route: RouteInfo::intra(NodeId(0)),
            permit: PermitState::NotNeeded,
            desc: PacketRef(u32::MAX),
        };
        let delivered_fill = Delivered {
            pkt: fill_packet(),
            completed_at: 0,
            via_popup: false,
        };
        Self {
            node,
            num_vnets: cfg.num_vnets,
            eq_capacity: cfg.ejection_queue_entries,
            inj_capacity: cfg.injection_queue_entries,
            inj_queues: RingBank::new(cfg.num_vnets, cfg.injection_queue_entries, pending_fill),
            active: vec![None; cfg.num_vnets],
            backlog: 0,
            out_vcs: vec![OutVcState::new(cfg.vc_buffer_depth); vcs],
            rr_vnet: 0,
            assembly: Vec::with_capacity(cfg.num_vnets * cfg.ejection_queue_entries),
            delivered: RingBank::new(cfg.num_vnets, cfg.ejection_queue_entries, delivered_fill),
            in_use: vec![0; cfg.num_vnets],
            upp_reserved: vec![0; cfg.num_vnets],
            consume,
            control_inbox: Vec::new(),
            injection_paused: false,
            consumption_paused: false,
        }
    }

    /// The node this NI is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Pauses or resumes injection (dynamic-fault endpoint throttling).
    pub fn set_injection_paused(&mut self, paused: bool) {
        self.injection_paused = paused;
    }

    /// True while injection is paused.
    pub fn injection_paused(&self) -> bool {
        self.injection_paused
    }

    /// Pauses or resumes PE consumption (dynamic-fault endpoint throttling).
    pub fn set_consumption_paused(&mut self, paused: bool) {
        self.consumption_paused = paused;
    }

    /// True while consumption is paused. External-consumption workloads must
    /// check this themselves before popping delivered packets.
    pub fn consumption_paused(&self) -> bool {
        self.consumption_paused
    }

    // ---------------------------------------------------------------- inject

    /// True if the per-VNet injection queue can take another packet.
    pub fn can_enqueue(&self, vnet: VnetId) -> bool {
        self.inj_queues.len(vnet.index()) < self.inj_capacity
    }

    /// Occupancy of one injection queue.
    pub fn injection_backlog(&self, vnet: VnetId) -> usize {
        self.inj_queues.len(vnet.index()) + usize::from(self.active[vnet.index()].is_some())
    }

    /// Enqueues a packet for injection. `desc` is the packet's interned
    /// descriptor handle (the caller allocates it in the arena first).
    ///
    /// # Errors
    ///
    /// Returns the packet back if the queue is full.
    pub fn enqueue(
        &mut self,
        pkt: Packet,
        route: RouteInfo,
        desc: PacketRef,
    ) -> Result<(), Packet> {
        let pending = PendingPacket {
            pkt,
            route,
            permit: PermitState::NotNeeded,
            desc,
        };
        match self.inj_queues.push_back(pkt.vnet.index(), pending) {
            Ok(()) => {
                self.backlog += 1;
                Ok(())
            }
            Err(p) => Err(p.pkt),
        }
    }

    /// Immutable view of the pending packets of one VNet (head first).
    pub fn pending(&self, vnet: VnetId) -> impl Iterator<Item = &PendingPacket> {
        self.inj_queues.iter(vnet.index())
    }

    /// Sets the permit state of a specific pending packet.
    pub fn set_permit(&mut self, id: PacketId, state: PermitState) -> bool {
        for q in 0..self.num_vnets {
            for i in 0..self.inj_queues.len(q) {
                let p = self.inj_queues.get_mut(q, i).expect("index in range");
                if p.pkt.id == id {
                    p.permit = state;
                    return true;
                }
            }
        }
        false
    }

    /// Picks the flit (if any) this NI sends into the router this cycle.
    ///
    /// At most one flit per cycle leaves the NI. Returns the flit and the
    /// flat Local-input VC it travels on. The caller (the network) turns it
    /// into a staged link event, reports head-flit injections to the packet
    /// tracker, and stamps the injection cycle into the arena descriptor.
    pub fn inject_step(
        &mut self,
        _now: Cycle,
        vcs_per_vnet: usize,
        vct: bool,
    ) -> Option<(Flit, usize)> {
        if self.backlog == 0 || self.injection_paused {
            return None;
        }
        // Round-robin across VNets: continue an active injection or start a
        // new one.
        for off in 0..self.num_vnets {
            let v = (self.rr_vnet + off) % self.num_vnets;
            if let Some(act) = &mut self.active[v] {
                let vcf = act.vc_flat;
                if self.out_vcs[vcf].credits == 0 {
                    continue;
                }
                let flit = Flit::new(act.desc, act.next_seq, act.len_flits);
                act.next_seq += 1;
                self.out_vcs[vcf].credits -= 1;
                if flit.kind.is_tail() {
                    self.active[v] = None;
                    self.backlog -= 1;
                }
                self.rr_vnet = (v + 1) % self.num_vnets;
                return Some((flit, vcf));
            }
            // Try to start the head-of-queue packet of this VNet.
            let Some(head) = self.inj_queues.front(v) else {
                continue;
            };
            if head.permit == PermitState::Waiting {
                continue;
            }
            // Allocate a free Local-input VC of this VNet (virtual
            // cut-through requires room for the whole packet).
            let need = if vct { head.pkt.len_flits as usize } else { 1 };
            let base = v * vcs_per_vnet;
            let Some(vcf) = (base..base + vcs_per_vnet)
                .find(|&f| !self.out_vcs[f].busy && self.out_vcs[f].credits >= need)
            else {
                continue;
            };
            let pending = self.inj_queues.pop_front(v).expect("checked non-empty");
            self.out_vcs[vcf].busy = true;
            self.out_vcs[vcf].credits -= 1;
            let flit = Flit::new(pending.desc, 0, pending.pkt.len_flits);
            if pending.pkt.len_flits > 1 {
                self.active[v] = Some(ActiveInjection {
                    desc: pending.desc,
                    len_flits: pending.pkt.len_flits,
                    vc_flat: vcf,
                    next_seq: 1,
                });
            } else {
                self.backlog -= 1;
            }
            self.rr_vnet = (v + 1) % self.num_vnets;
            return Some((flit, vcf));
        }
        None
    }

    /// Credit return from the router's Local input VC.
    pub fn on_credit(&mut self, vc_flat: usize, is_free: bool) {
        self.out_vcs[vc_flat].credits += 1;
        if is_free {
            self.out_vcs[vc_flat].busy = false;
        }
    }

    // ----------------------------------------------------------------- eject

    /// Free (unclaimed, unreserved) ejection entries of a VNet.
    pub fn free_entries(&self, vnet: VnetId) -> usize {
        self.eq_capacity
            .saturating_sub(self.in_use[vnet.index()] + self.upp_reserved[vnet.index()])
    }

    /// Claims an ejection entry for a packet about to stream in through the
    /// router's Local output VC.
    ///
    /// # Panics
    ///
    /// Panics if no entry is free — the router must check
    /// [`Ni::free_entries`] before allocating the Local output VC.
    pub fn claim_entry(&mut self, vnet: VnetId) {
        assert!(
            self.free_entries(vnet) > 0,
            "ejection entry claimed without availability"
        );
        self.in_use[vnet.index()] += 1;
    }

    /// Reserves one ejection entry for an incoming popped-up packet
    /// (UPP_req handling). Returns false when no entry is currently free;
    /// the protocol retries until it succeeds (Sec. V-B4 proves it
    /// eventually does).
    pub fn try_reserve_entry(&mut self, vnet: VnetId) -> bool {
        if self.free_entries(vnet) == 0 {
            return false;
        }
        self.upp_reserved[vnet.index()] += 1;
        true
    }

    /// Releases a reservation (UPP_stop handling).
    ///
    /// # Panics
    ///
    /// Panics if no reservation is outstanding for `vnet`.
    pub fn release_reservation(&mut self, vnet: VnetId) {
        assert!(
            self.upp_reserved[vnet.index()] > 0,
            "releasing a reservation that was never made"
        );
        self.upp_reserved[vnet.index()] -= 1;
    }

    /// Outstanding UPP reservations for a VNet.
    pub fn reservations(&self, vnet: VnetId) -> usize {
        self.upp_reserved[vnet.index()]
    }

    /// Accepts a flit delivered through the router's Local output port.
    ///
    /// `via_popup` marks upward (bypassed) flits: the head of a popped-up
    /// packet converts an UPP reservation into a claimed entry.
    ///
    /// Returns the completed packet when this was the tail flit.
    pub fn accept_flit(
        &mut self,
        flit: Flit,
        now: Cycle,
        via_popup: bool,
        arena: &PacketArena,
    ) -> Option<Delivered> {
        let desc = *arena.desc(&flit);
        let v = desc.vnet.index();
        if flit.kind.is_head() {
            if via_popup {
                // Convert the reservation made by UPP_req into a claim.
                assert!(
                    self.upp_reserved[v] > 0,
                    "upward packet arrived without an ejection reservation at {}",
                    self.node
                );
                self.upp_reserved[v] -= 1;
                self.in_use[v] += 1;
            }
            debug_assert!(
                self.in_use[v] <= self.eq_capacity,
                "ejection over-subscription at {}",
                self.node
            );
            debug_assert!(
                !self.assembly.iter().any(|a| a.desc == flit.desc),
                "duplicate head flit for {}",
                desc.id
            );
            self.assembly.push(Assembly {
                desc: flit.desc,
                received: 0,
                via_popup,
            });
        }
        let ix = self
            .assembly
            .iter()
            .position(|a| a.desc == flit.desc)
            .unwrap_or_else(|| panic!("flit of unknown packet {} at NI {}", desc.id, self.node));
        let asm = &mut self.assembly[ix];
        debug_assert_eq!(
            asm.received, flit.seq,
            "out-of-order flit at NI {}",
            self.node
        );
        asm.received += 1;
        asm.via_popup |= via_popup;
        if flit.kind.is_tail() {
            let asm = self.assembly.swap_remove(ix);
            let len = flit.seq + 1;
            debug_assert_eq!(desc.pkt_len, len, "tail seq disagrees with descriptor");
            let pkt = Packet::new(
                desc.id,
                desc.src,
                desc.route.dest,
                desc.vnet,
                len,
                desc.created_at,
            );
            let d = Delivered {
                pkt,
                completed_at: now,
                via_popup: asm.via_popup,
            };
            if self.delivered.push_back(v, d).is_err() {
                panic!(
                    "delivered queue overflow at NI {} vnet {v} (more packets than ejection entries)",
                    self.node
                );
            }
            return Some(d);
        }
        None
    }

    /// PE-side: pops the oldest delivered packet of a VNet and frees its
    /// ejection entry (External consumption policy).
    pub fn pop_delivered(&mut self, vnet: VnetId) -> Option<Delivered> {
        let d = self.delivered.pop_front(vnet.index())?;
        self.in_use[vnet.index()] -= 1;
        Some(d)
    }

    /// Peeks the oldest delivered packet of a VNet without consuming it.
    pub fn peek_delivered(&self, vnet: VnetId) -> Option<&Delivered> {
        self.delivered.front(vnet.index())
    }

    /// Runs the Immediate consumption policy; External is a no-op.
    pub fn consume_step(&mut self, now: Cycle) {
        if self.consumption_paused {
            return;
        }
        if let ConsumePolicy::Immediate { latency } = self.consume {
            if !self.delivered.any_nonempty() {
                return;
            }
            for v in 0..self.num_vnets {
                while self
                    .delivered
                    .front(v)
                    .is_some_and(|d| d.completed_at + latency <= now)
                {
                    self.delivered.pop_front(v);
                    self.in_use[v] -= 1;
                }
            }
        }
    }

    // --------------------------------------------------------------- control

    /// Delivers a control message to this NI's inbox.
    pub fn deliver_control(&mut self, msg: DeliveredControl) {
        self.control_inbox.push(msg);
    }

    /// Drains the control inbox into `out` (called by the scheme each
    /// cycle), reusing both buffers' capacity (no per-call allocation).
    pub fn drain_control_inbox_into(&mut self, out: &mut Vec<DeliveredControl>) {
        out.append(&mut self.control_inbox);
    }

    /// True when stepping this NI next cycle could possibly do work: an
    /// unpaused injection backlog, an Immediate-consumable delivered queue,
    /// or an unread control-inbox entry.
    ///
    /// This is the active-set scheduler's wake predicate; like
    /// [`crate::router::Router::has_pending_work`] it is level-based, so a
    /// backlogged-but-blocked NI (no credits, permits still `Waiting`)
    /// stays scheduled until its queues actually empty. Credits and permit
    /// grants only enable progress for packets already counted in
    /// `backlog`, so they need no wake of their own.
    pub fn has_pending_work(&self) -> bool {
        (self.backlog > 0 && !self.injection_paused)
            || !self.control_inbox.is_empty()
            || (!self.consumption_paused
                && matches!(self.consume, ConsumePolicy::Immediate { .. })
                && self.delivered.any_nonempty())
    }

    /// Exact heap bytes of this NI's steady-state storage (injection and
    /// delivered rings, VC credit mirrors, assembly table at capacity,
    /// per-VNet counters).
    pub fn mem_bytes(&self) -> usize {
        self.inj_queues.mem_bytes()
            + self.delivered.mem_bytes()
            + self.out_vcs.len() * std::mem::size_of::<OutVcState>()
            + self.active.len() * std::mem::size_of::<Option<ActiveInjection>>()
            + self.assembly.capacity() * std::mem::size_of::<Assembly>()
            + (self.in_use.len() + self.upp_reserved.len()) * std::mem::size_of::<usize>()
    }

    /// Helper for schemes: which flat VC indices belong to `vnet`.
    pub fn vnet_vcs(vnet: VnetId, vcs_per_vnet: usize) -> std::ops::Range<usize> {
        let base = vnet.index() * vcs_per_vnet;
        base..base + vcs_per_vnet
    }

    /// Looks up the flat VC for a `VcId`.
    pub fn flat_vc(vc: VcId, vcs_per_vnet: usize) -> usize {
        vc.flat(vcs_per_vnet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, PacketId, VnetId};
    use crate::packet::{PacketDesc, RouteInfo};

    fn cfg() -> NocConfig {
        NocConfig::default()
    }

    fn ni() -> Ni {
        Ni::new(NodeId(0), &cfg(), ConsumePolicy::External)
    }

    fn pkt(id: u64, vnet: u8, len: u16) -> (Packet, RouteInfo) {
        let p = Packet::new(PacketId(id), NodeId(0), NodeId(1), VnetId(vnet), len, 0);
        (p, RouteInfo::intra(NodeId(1)))
    }

    fn intern(arena: &mut PacketArena, p: &Packet, r: RouteInfo) -> PacketRef {
        arena.alloc(PacketDesc {
            id: p.id,
            src: p.src,
            vnet: p.vnet,
            pkt_len: p.len_flits,
            route: r,
            created_at: p.created_at,
        })
    }

    fn enqueue(n: &mut Ni, arena: &mut PacketArena, id: u64, vnet: u8, len: u16) {
        let (p, r) = pkt(id, vnet, len);
        let d = intern(arena, &p, r);
        n.enqueue(p, r, d).unwrap();
    }

    fn deliver(
        ni: &mut Ni,
        arena: &mut PacketArena,
        id: u64,
        vnet: u8,
        len: u16,
        popup: bool,
    ) -> Option<Delivered> {
        let p = Packet::new(PacketId(id), NodeId(2), NodeId(0), VnetId(vnet), len, 0);
        let d = intern(arena, &p, RouteInfo::intra(NodeId(0)));
        let mut out = None;
        for seq in 0..len {
            let f = Flit::new(d, seq, len);
            out = ni.accept_flit(f, 10 + seq as u64, popup, arena);
        }
        out
    }

    #[test]
    fn injection_streams_one_flit_per_cycle() {
        let mut n = ni();
        let mut arena = PacketArena::new();
        enqueue(&mut n, &mut arena, 1, 0, 3);
        let (f0, vc0) = n.inject_step(0, 1, false).unwrap();
        assert_eq!(f0.seq, 0);
        let (f1, vc1) = n.inject_step(1, 1, false).unwrap();
        let (f2, _) = n.inject_step(2, 1, false).unwrap();
        assert_eq!((f1.seq, f2.seq), (1, 2));
        assert_eq!(vc0, vc1);
        assert!(f2.kind.is_tail());
        assert!(n.inject_step(3, 1, false).is_none(), "queue drained");
    }

    #[test]
    fn injection_respects_credits_and_busy() {
        let mut n = ni();
        let mut arena = PacketArena::new();
        enqueue(&mut n, &mut arena, 1, 0, 5);
        // Drain all 4 credits of the single VC.
        for _ in 0..4 {
            assert!(n.inject_step(0, 1, false).is_some());
        }
        assert!(n.inject_step(0, 1, false).is_none(), "out of credits");
        n.on_credit(0, false);
        assert!(n.inject_step(1, 1, false).is_some());
        // VC stays busy for a second packet of the same VNet until freed.
        enqueue(&mut n, &mut arena, 2, 0, 1);
        assert!(
            n.inject_step(2, 1, false).is_none(),
            "tail sent but VC not yet freed"
        );
        n.on_credit(0, true);
        for _ in 0..4 {
            n.on_credit(0, false);
        }
        let (f, _) = n.inject_step(3, 1, false).unwrap();
        assert_eq!(arena.desc(&f).id, PacketId(2));
    }

    #[test]
    fn waiting_permit_blocks_injection() {
        let mut n = ni();
        let mut arena = PacketArena::new();
        enqueue(&mut n, &mut arena, 7, 1, 1);
        assert!(n.set_permit(PacketId(7), PermitState::Waiting));
        assert!(n.inject_step(0, 1, false).is_none());
        assert!(n.set_permit(PacketId(7), PermitState::Granted));
        assert!(n.inject_step(1, 1, false).is_some());
        assert!(
            !n.set_permit(PacketId(7), PermitState::Granted),
            "no longer pending"
        );
    }

    #[test]
    fn round_robin_across_vnets() {
        let mut n = ni();
        let mut arena = PacketArena::new();
        for v in 0..3u8 {
            enqueue(&mut n, &mut arena, v as u64, v, 2);
        }
        let mut seen = Vec::new();
        for c in 0..6 {
            let (f, _) = n.inject_step(c, 1, false).unwrap();
            seen.push(arena.desc(&f).vnet.0);
        }
        // All three VNets interleave.
        assert_eq!(seen.iter().filter(|&&v| v == 0).count(), 2);
        assert_eq!(seen.iter().filter(|&&v| v == 1).count(), 2);
        assert_eq!(seen.iter().filter(|&&v| v == 2).count(), 2);
    }

    #[test]
    fn ejection_assembles_and_pops() {
        let mut n = ni();
        let mut arena = PacketArena::new();
        n.claim_entry(VnetId(0));
        let d = deliver(&mut n, &mut arena, 5, 0, 4, false).expect("tail completes");
        assert_eq!(d.pkt.len_flits, 4);
        assert!(!d.via_popup);
        assert_eq!(n.free_entries(VnetId(0)), 3);
        let popped = n.pop_delivered(VnetId(0)).unwrap();
        assert_eq!(popped.pkt.id, PacketId(5));
        assert_eq!(n.free_entries(VnetId(0)), 4);
    }

    #[test]
    fn reservation_lifecycle() {
        let mut n = ni();
        assert_eq!(n.free_entries(VnetId(1)), 4);
        assert!(n.try_reserve_entry(VnetId(1)));
        assert_eq!(n.free_entries(VnetId(1)), 3);
        assert_eq!(n.reservations(VnetId(1)), 1);
        n.release_reservation(VnetId(1));
        assert_eq!(n.free_entries(VnetId(1)), 4);
    }

    #[test]
    fn reservation_fails_when_full() {
        let mut n = ni();
        for _ in 0..4 {
            n.claim_entry(VnetId(0));
        }
        assert!(!n.try_reserve_entry(VnetId(0)));
    }

    #[test]
    fn popup_head_consumes_reservation() {
        let mut n = ni();
        let mut arena = PacketArena::new();
        assert!(n.try_reserve_entry(VnetId(2)));
        let d = deliver(&mut n, &mut arena, 9, 2, 5, true).unwrap();
        assert!(d.via_popup);
        assert_eq!(n.reservations(VnetId(2)), 0);
        assert_eq!(
            n.free_entries(VnetId(2)),
            3,
            "entry now claimed, not reserved"
        );
    }

    #[test]
    fn immediate_policy_consumes_after_latency() {
        let mut n = Ni::new(NodeId(0), &cfg(), ConsumePolicy::Immediate { latency: 2 });
        let mut arena = PacketArena::new();
        n.claim_entry(VnetId(0));
        deliver(&mut n, &mut arena, 1, 0, 1, false).unwrap();
        n.consume_step(10); // completed at 10
        assert_eq!(n.free_entries(VnetId(0)), 3);
        n.consume_step(12);
        assert_eq!(n.free_entries(VnetId(0)), 4);
    }

    #[test]
    fn enqueue_full_returns_packet() {
        let mut n = ni();
        let mut arena = PacketArena::new();
        for i in 0..16 {
            enqueue(&mut n, &mut arena, i, 0, 1);
        }
        let (p, r) = pkt(99, 0, 1);
        let d = intern(&mut arena, &p, r);
        assert!(n.enqueue(p, r, d).is_err());
        assert_eq!(n.injection_backlog(VnetId(0)), 16);
        assert!(n.mem_bytes() > 0);
    }

    #[test]
    fn control_inbox_drains() {
        use crate::control::{ControlClass, ControlMsg, ControlRoute, DeliveredControl};
        let mut n = ni();
        n.deliver_control(DeliveredControl {
            msg: ControlMsg {
                class: ControlClass::ReqLike,
                bits: 7,
                vnet: VnetId(0),
                routing: ControlRoute::Forward,
                route: RouteInfo::intra(NodeId(0)),
                origin: NodeId(3),
                circuit_key: NodeId(0),
                record_circuit: false,
                deliver_to_ni: true,
            },
            in_port: crate::ids::Port::West,
            at: 5,
        });
        assert!(n.has_pending_work(), "unread inbox keeps the NI scheduled");
        let mut out = Vec::new();
        n.drain_control_inbox_into(&mut out);
        assert_eq!(out.len(), 1);
        n.drain_control_inbox_into(&mut out);
        assert_eq!(out.len(), 1, "second drain adds nothing");
        assert!(!n.has_pending_work());
    }
}
