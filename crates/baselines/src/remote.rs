//! Remote control (Majumder et al., IEEE TC 2021) — the injection-control
//! baseline.
//!
//! Deadlocks are avoided by *isolating* inter-chiplet packets from
//! intra-chiplet packets: every boundary router carries data-packet-sized
//! side buffers (four per VC per VNet; the paper's 1-VC configuration has
//! four) that absorb all traffic entering the chiplet, so a stalled
//! inter-chiplet packet can never hold chiplet VC buffers against
//! intra-chiplet traffic. Before an inter-chiplet packet injects, its NI
//! reserves a side-buffer slot over a hard-wired permission subnetwork —
//! a round trip of at least 2 cycles, plus queueing when slots are contended
//! (Sec. III-B of the UPP paper). Crossing the boundary costs one extra
//! pipeline cycle because VA and SA cannot run in parallel there.

use std::collections::{HashMap, VecDeque};
use upp_noc::ids::{Cycle, NodeId, PacketId, Port};
use upp_noc::network::Network;
use upp_noc::ni::PermitState;
use upp_noc::obs::{CounterId, GaugeId};
use upp_noc::scheme::{Scheme, SchemeProperties};

/// Remote-control tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteControlConfig {
    /// Side-buffer slots per boundary router *per VC per VNet* (the paper
    /// uses four data-packet buffers in its 1-VC configuration; the buffers
    /// "can store all inter-chiplet packets", so they scale with the VC
    /// resources feeding them — without scaling, remote control would
    /// starve at 4 VCs far below its published equal-to-UPP saturation).
    pub slots_per_boundary_per_vc: usize,
    /// Minimum permission round-trip in cycles (the paper says minimally 2).
    pub permission_rtt: u64,
}

impl Default for RemoteControlConfig {
    fn default() -> Self {
        Self {
            slots_per_boundary_per_vc: 4,
            permission_rtt: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PermitRequest {
    packet: PacketId,
    src: NodeId,
    requested_at: Cycle,
}

/// Per-run counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteControlStats {
    /// Permits requested.
    pub requests: u64,
    /// Permits granted.
    pub grants: u64,
    /// Total cycles packets waited beyond the fixed round trip.
    pub contention_wait_cycles: u64,
}

/// Pre-registered telemetry ids (`Some` only while the network's obs
/// registry is enabled). Permit-queue pressure and absorber occupancy are
/// remote control's analogue of UPP's circuit-table/watchdog pressure:
/// the boundary structures whose growth with system size decides
/// scalability.
#[derive(Debug, Clone, Copy)]
struct RcObs {
    /// Running totals mirrored from [`RemoteControlStats`].
    requests: CounterId,
    grants: CounterId,
    contention_wait: CounterId,
    /// Total queued permit requests across boundaries / deepest queue.
    queue_depth: GaugeId,
    queue_max: GaugeId,
    /// Occupied absorber slots / buffered absorber flits across boundaries.
    absorber_slots: GaugeId,
    absorber_flits: GaugeId,
}

/// The remote-control scheme.
pub struct RemoteControl {
    cfg: RemoteControlConfig,
    /// FIFO permission queue per ingress boundary router.
    queues: HashMap<NodeId, VecDeque<PermitRequest>>,
    stats: RemoteControlStats,
    initialized: bool,
    obs: Option<RcObs>,
}

impl std::fmt::Debug for RemoteControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteControl")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl RemoteControl {
    /// Creates the scheme.
    pub fn new(cfg: RemoteControlConfig) -> Self {
        Self {
            cfg,
            queues: HashMap::new(),
            stats: RemoteControlStats::default(),
            initialized: false,
            obs: None,
        }
    }

    /// Run counters.
    pub fn stats(&self) -> RemoteControlStats {
        self.stats
    }

    fn ensure_obs(&mut self, net: &mut Network) {
        if self.obs.is_some() || !net.obs().is_enabled() {
            return;
        }
        let o = net.obs_mut();
        self.obs = Some(RcObs {
            requests: o.counter("rc.permits.requested"),
            grants: o.counter("rc.permits.granted"),
            contention_wait: o.counter("rc.permits.contention_wait_cycles"),
            queue_depth: o.gauge("rc.permit_queue.depth"),
            queue_max: o.gauge("rc.permit_queue.max"),
            absorber_slots: o.gauge("rc.absorber.slots_occupied"),
            absorber_flits: o.gauge("rc.absorber.flits"),
        });
    }

    fn initialize(&mut self, net: &mut Network) {
        let boundaries: Vec<NodeId> = net
            .topo()
            .chiplets()
            .iter()
            .flat_map(|c| c.boundary_routers.iter().copied())
            .collect();
        let slots = self.cfg.slots_per_boundary_per_vc * net.cfg().vcs_per_vnet;
        for b in boundaries {
            net.router_mut(b).install_absorber(slots);
            self.queues.insert(b, VecDeque::new());
        }
        // Interposer routers feeding an absorber never see Up-port VC
        // backpressure: the side buffer always has room for reserved packets.
        let ups: Vec<NodeId> = net
            .topo()
            .interposer_routers()
            .iter()
            .copied()
            .filter(|&n| net.topo().above(n).is_some())
            .collect();
        for n in ups {
            net.router_mut(n).set_infinite_sink(Port::Up);
        }
        self.initialized = true;
    }
}

impl Scheme for RemoteControl {
    fn name(&self) -> &'static str {
        "remote-control"
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            topology_modularity: true,
            vc_modularity: true,
            flow_control_modularity: true,
            full_path_diversity: true,
            no_injection_control: false,  // the whole point
            topology_independence: false, // hard-wired permission subnetwork
        }
    }

    fn pre_cycle(&mut self, net: &mut Network) {
        if !self.initialized {
            self.initialize(net);
        }
        self.ensure_obs(net);
        let now = net.cycle();
        let boundaries: Vec<NodeId> = self.queues.keys().copied().collect();
        for b in boundaries {
            // One grant per boundary per cycle, FIFO, honouring the fixed
            // round-trip latency and slot availability.
            let Some(req) = self.queues.get(&b).and_then(|q| q.front().copied()) else {
                continue;
            };
            if now < req.requested_at + self.cfg.permission_rtt {
                continue;
            }
            let reserved = net
                .router_mut(b)
                .absorber_mut()
                .expect("absorber installed at attach")
                .reserve(req.packet);
            if !reserved {
                self.stats.contention_wait_cycles += 1;
                continue;
            }
            net.set_injection_permit(req.src, req.packet, PermitState::Granted);
            self.queues.get_mut(&b).expect("queue exists").pop_front();
            self.stats.grants += 1;
        }
    }

    fn advance_to(&mut self, _net: &Network, _from: Cycle, _to: Cycle) -> bool {
        // Pending permit requests are paced per cycle (RTT check, one grant
        // per boundary per cycle, contention-wait accounting), so any queued
        // request vetoes the jump. With every queue empty `pre_cycle` is a
        // pure no-op and skipping is cycle-exact.
        self.initialized && self.queues.values().all(|q| q.is_empty())
    }

    fn observe(&mut self, net: &mut Network) {
        if !net.obs().is_enabled() {
            return;
        }
        if !self.initialized {
            self.initialize(net);
        }
        self.ensure_obs(net);
        let Some(o) = self.obs else { return };
        // Permit-queue pressure: total backlog plus the deepest single
        // queue. Summation and max are commutative, so HashMap iteration
        // order cannot affect the sampled values.
        let mut depth = 0u64;
        let mut deepest = 0u64;
        let mut slots = 0u64;
        let mut flits = 0u64;
        for (&b, q) in &self.queues {
            depth += q.len() as u64;
            deepest = deepest.max(q.len() as u64);
            if let Some(abs) = net.router(b).absorber() {
                let (occupied, buffered) = abs.occupancy();
                slots += occupied as u64;
                flits += buffered as u64;
            }
        }
        let obs = net.obs_mut();
        // The stats fields are monotonic running totals, so replaying them
        // through `counter_record_total` keeps epoch deltas exact.
        obs.counter_record_total(o.requests, self.stats.requests);
        obs.counter_record_total(o.grants, self.stats.grants);
        obs.counter_record_total(o.contention_wait, self.stats.contention_wait_cycles);
        obs.gauge_set(o.queue_depth, depth);
        obs.gauge_set(o.queue_max, deepest);
        obs.gauge_set(o.absorber_slots, slots);
        obs.gauge_set(o.absorber_flits, flits);
    }

    fn on_packet_created(&mut self, net: &mut Network, id: PacketId, src: NodeId, dest: NodeId) {
        if !self.initialized {
            self.initialize(net);
        }
        let plan = net.plan_route(src, dest);
        if !plan.class.ascends() {
            return;
        }
        let entry = plan
            .entry_interposer
            .expect("ascending packets have an entry");
        let boundary = net
            .topo()
            .above(entry)
            .expect("entry interposers sit below boundaries");
        net.set_injection_permit(src, id, PermitState::Waiting);
        self.queues
            .get_mut(&boundary)
            .expect("all boundaries have permission queues")
            .push_back(PermitRequest {
                packet: id,
                src,
                requested_at: net.cycle(),
            });
        self.stats.requests += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use upp_noc::config::NocConfig;
    use upp_noc::ids::VnetId;
    use upp_noc::network::Network;
    use upp_noc::ni::ConsumePolicy;
    use upp_noc::routing::ChipletRouting;
    use upp_noc::sim::{RunOutcome, System};
    use upp_noc::topology::ChipletSystemSpec;

    fn system() -> System {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let net = Network::new(
            NocConfig::default(),
            topo,
            Arc::new(ChipletRouting::xy()),
            ConsumePolicy::Immediate { latency: 1 },
            5,
        );
        System::new(
            net,
            Box::new(RemoteControl::new(RemoteControlConfig::default())),
        )
    }

    #[test]
    fn inter_chiplet_packets_wait_for_permission() {
        let mut sys = system();
        let src = sys.net().topo().chiplets()[0].routers[0];
        let dest = sys.net().topo().chiplets()[1].routers[9];
        sys.send(src, dest, VnetId(0), 5).unwrap();
        // For the first two cycles the permit is pending and nothing injects.
        sys.run(2);
        assert_eq!(
            sys.net().stats().packets_injected,
            0,
            "held by injection control"
        );
        assert!(matches!(
            sys.run_until_drained(2_000),
            RunOutcome::Drained { .. }
        ));
        assert_eq!(sys.net().stats().packets_ejected, 1);
    }

    #[test]
    fn intra_chiplet_packets_skip_injection_control() {
        let mut sys = system();
        let c = &sys.net().topo().chiplets()[0];
        let (src, dest) = (c.routers[0], c.routers[5]);
        sys.send(src, dest, VnetId(0), 1).unwrap();
        sys.run(3);
        assert_eq!(sys.net().stats().packets_injected, 1, "no permit needed");
        assert!(matches!(
            sys.run_until_drained(1_000),
            RunOutcome::Drained { .. }
        ));
    }

    #[test]
    fn slot_contention_serialises_heavy_ingress() {
        let mut sys = system();
        let dest = sys.net().topo().chiplets()[2].routers[10];
        let sources: Vec<NodeId> = sys.net().topo().chiplets()[0].routers.clone();
        let mut sent = 0;
        for &s in &sources {
            if sys.send(s, dest, VnetId(1), 5).is_some() {
                sent += 1;
            }
        }
        let out = sys.run_until_drained(20_000);
        assert!(matches!(out, RunOutcome::Drained { .. }), "got {out:?}");
        assert_eq!(sys.net().stats().packets_ejected, sent);
    }

    #[test]
    fn heavy_cross_traffic_never_deadlocks() {
        let mut sys = system();
        let nodes: Vec<NodeId> = sys
            .net()
            .topo()
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect();
        let n = nodes.len();
        let mut sent = 0u64;
        for round in 0..8 {
            for (i, &s) in nodes.iter().enumerate() {
                let d = nodes[(i + n / 2 + round) % n];
                if s == d {
                    continue;
                }
                if sys
                    .send(s, d, VnetId((i % 3) as u8), if i % 2 == 0 { 5 } else { 1 })
                    .is_some()
                {
                    sent += 1;
                }
            }
            sys.run(20);
        }
        let out = sys.run_until_drained(100_000);
        assert!(matches!(out, RunOutcome::Drained { .. }), "got {out:?}");
        assert_eq!(sys.net().stats().packets_ejected, sent);
    }

    #[test]
    fn telemetry_reports_permit_and_absorber_pressure() {
        let mut sys = system();
        sys.net_mut().enable_obs();
        let dest = sys.net().topo().chiplets()[2].routers[10];
        let sources: Vec<NodeId> = sys.net().topo().chiplets()[0].routers.clone();
        for &s in &sources {
            let _ = sys.send(s, dest, VnetId(1), 5);
        }
        // Mid-flight sample: permits are still queued behind the RTT and the
        // one-grant-per-boundary pacing.
        sys.run(2);
        sys.observe();
        let obs = sys.net().obs();
        assert!(obs.counter_value("rc.permits.requested") > 0);
        let (_, depth_high) = obs.gauge_value("rc.permit_queue.depth");
        assert!(depth_high > 0, "queued permits must register as depth");
        // Gauges are sampled, so observe periodically to catch the absorbers
        // while they hold packets.
        for _ in 0..2_000 {
            sys.run(10);
            sys.observe();
            if sys.net().in_flight() == 0 {
                break;
            }
        }
        assert_eq!(sys.net().in_flight(), 0, "run must drain");
        let obs = sys.net().obs();
        assert_eq!(
            obs.counter_value("rc.permits.granted"),
            obs.counter_value("rc.permits.requested"),
            "a drained run granted every permit"
        );
        let (depth_now, _) = obs.gauge_value("rc.permit_queue.depth");
        assert_eq!(depth_now, 0, "drained network has no queued permits");
        let (_, slots_high) = obs.gauge_value("rc.absorber.slots_occupied");
        assert!(slots_high > 0, "absorbers held packets during the run");
    }

    #[test]
    fn properties_match_table_i() {
        let rc = RemoteControl::new(RemoteControlConfig::default());
        let p = rc.properties();
        assert!(p.topology_modularity && p.vc_modularity && p.flow_control_modularity);
        assert!(p.full_path_diversity);
        assert!(!p.no_injection_control);
        assert!(!p.topology_independence);
    }
}
