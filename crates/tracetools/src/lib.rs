//! # upp-tracetools — latency-attribution analysis toolchain
//!
//! Turns the simulator's raw telemetry (flight-recorder JSONL traces, or a
//! streaming in-process feed from `upp_noc::profile::SpanRecorder`) into
//! answers:
//!
//! * [`histogram::Histogram`] — mergeable log-bucketed latency histograms
//!   with exact-count merge and a documented 1/64 relative-error bound;
//! * [`summary::ProfileSummary`] — per-phase latency attribution
//!   (injection queueing, VC-allocation wait, switch-allocation wait,
//!   credit-blocked, UPP wait-ack/locate/pop, link serialization),
//!   per-router and per-link contention counters, and the slowest packets
//!   for critical-path analysis, with deterministic JSON round-tripping;
//! * [`render`] — analysis reports, contention heatmaps (CSV + SVG via
//!   `upp_noc::viz`), critical-path listings and run-vs-run diffs;
//! * [`obs`] — per-metric reports, time-series CSV and SVG over the
//!   protocol-state telemetry written by `simulate --obs`/`--obs-every`
//!   (`upp_noc::obs` summaries and epoch streams);
//! * [`alerts`] — tables, CSV timelines and SVG lane charts over the
//!   `upp-alerts/v1` health-monitor streams written by
//!   `simulate --watch-out` (`upp_noc::watch`);
//! * the `upp-trace` CLI (`analyze`, `heatmap`, `critical-path`, `diff`,
//!   `obs`, `alerts`, `live`) over all input shapes.
//!
//! The streaming path matters at scale: `simulate --profile` folds spans
//! into a [`summary::ProfileSummary`] as the run progresses, so a
//! million-packet run emits one small JSON document instead of a
//! multi-gigabyte trace file — and `upp-trace` consumes either
//! interchangeably.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alerts;
pub mod events;
pub mod histogram;
pub mod obs;
pub mod render;
pub mod summary;

pub use alerts::AlertsReport;
pub use histogram::Histogram;
pub use obs::ObsReport;
pub use summary::{PhaseTotals, ProfileSummary};
