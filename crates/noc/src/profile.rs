//! Per-packet latency attribution: the span recorder.
//!
//! A [`SpanRecorder`] rides along inside the [`crate::trace::Tracer`]
//! (see [`crate::trace::Tracer::set_profiler`]) and folds the flight
//! recorder's event stream into one [`PacketSpan`] per delivered packet,
//! decomposing its life into the phases the paper's Fig. 12/13 argue
//! about:
//!
//! * **injection queueing** — creation at the source NI until the head
//!   flit enters the network;
//! * **VC-allocation wait** — cycles a head-of-line flit sat blocked
//!   because no downstream VC of its VNet was free;
//! * **switch-allocation wait** — cycles a bidding flit lost the crossbar
//!   to another input;
//! * **credit-blocked** — cycles the allocated downstream VC had no
//!   credits left;
//! * **UPP recovery** — the wait-ack / locate / pop stage split of a
//!   completed popup, attributed to the recovered packet;
//! * **link serialization** — the residual: network latency not
//!   explained by any wait above (pipeline stages, link traversal,
//!   per-flit serialization).
//!
//! Blocked phases count *blocked VC-cycles*: a multi-flit worm stalled in
//! several routers at once accrues one count per stalled head-of-line VC
//! per cycle, so the blocked phases of one packet can legitimately exceed
//! its network latency. The residual is clamped at zero in that case.
//!
//! The recorder is as opt-in as the tracer itself: when no profiler is
//! installed every instrumentation site still reduces to the tracer's
//! single `enabled()` branch, so profiling-off runs are cycle-for-cycle
//! and instruction-for-instruction identical to untraced ones.
//!
//! Finished spans are buffered until [`SpanRecorder::drain_finished`] is
//! called; long-running drivers drain periodically and fold the spans
//! into aggregate histograms (see the `upp-tracetools` crate) so
//! million-packet runs never hold more than one drain interval's worth of
//! spans in memory.

use crate::ids::{Cycle, NodeId, PacketId, Port, VnetId};
use crate::trace::{BlockReason, TraceEvent};
use std::collections::VecDeque;

/// One delivered packet's fully-attributed latency decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketSpan {
    /// The packet.
    pub packet: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// VNet.
    pub vnet: VnetId,
    /// Length in flits.
    pub len_flits: u16,
    /// Cycle the packet was enqueued at its source NI.
    pub created_at: Cycle,
    /// Cycle the head flit entered the network.
    pub injected_at: Cycle,
    /// Cycle the tail flit completed at the destination NI.
    pub ejected_at: Cycle,
    /// Cycles queued at the source NI (create -> inject).
    pub inj_queue: u64,
    /// Blocked VC-cycles waiting for a free downstream VC.
    pub vc_alloc: u64,
    /// Blocked VC-cycles lost to switch allocation.
    pub sa_wait: u64,
    /// Blocked VC-cycles waiting for downstream credits.
    pub credit: u64,
    /// UPP recovery: cycles waiting for the `UPP_ack`.
    pub wait_ack: u64,
    /// UPP recovery: cycles locating a partly-transmitted head.
    pub locate: u64,
    /// UPP recovery: cycles popping flits through the bypass path.
    pub pop: u64,
    /// Residual network cycles: `net_latency` minus every attributed wait,
    /// clamped at zero (pipeline + link serialization).
    pub serialization: u64,
    /// Routers that granted this packet a VC (normal-path hop count).
    pub hops: u32,
    /// Routers crossed on the single-ST popup bypass path.
    pub bypass_hops: u32,
    /// Per-router blocked VC-cycles, in first-blocked order.
    pub waits: Vec<(NodeId, u64)>,
}

impl PacketSpan {
    /// Inject-to-eject latency in cycles.
    pub fn net_latency(&self) -> u64 {
        self.ejected_at - self.injected_at
    }

    /// Create-to-eject latency in cycles.
    pub fn total_latency(&self) -> u64 {
        self.ejected_at - self.created_at
    }

    /// Total UPP-recovery cycles attributed to this packet.
    pub fn upp_recovery(&self) -> u64 {
        self.wait_ack + self.locate + self.pop
    }
}

/// A packet whose creation has been observed but whose tail has not yet
/// ejected.
#[derive(Debug, Clone)]
struct LiveSpan {
    src: NodeId,
    dest: NodeId,
    vnet: VnetId,
    len_flits: u16,
    created_at: Cycle,
    injected_at: Option<Cycle>,
    vc_alloc: u64,
    sa_wait: u64,
    credit: u64,
    wait_ack: u64,
    locate: u64,
    pop: u64,
    hops: u32,
    bypass_hops: u32,
    waits: Vec<(NodeId, u64)>,
}

/// Live spans indexed densely by packet id.
///
/// [`crate::stats::PacketTracker`] hands out packet ids sequentially, so
/// the live set at any instant occupies a narrow sliding id window: a ring
/// of `Option<LiveSpan>` slots addressed by `id - base` replaces the former
/// per-event `HashMap` hashing with one bounds check and an index. Ids
/// outside the window (packets in flight before the recorder was
/// installed, or non-sequential ids from a foreign source) are tolerated:
/// lookups miss, inserts below the window grow it frontward.
#[derive(Debug, Default)]
struct DenseSpanMap {
    /// Packet id of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<LiveSpan>>,
    len: usize,
}

impl DenseSpanMap {
    fn insert(&mut self, id: PacketId, s: LiveSpan) {
        let k = id.0;
        if self.slots.is_empty() {
            self.base = k;
        } else if k < self.base {
            for _ in k..self.base {
                self.slots.push_front(None);
            }
            self.base = k;
        }
        let ix = (k - self.base) as usize;
        if ix >= self.slots.len() {
            self.slots.resize_with(ix + 1, || None);
        }
        if self.slots[ix].replace(s).is_none() {
            self.len += 1;
        }
    }

    fn get_mut(&mut self, id: PacketId) -> Option<&mut LiveSpan> {
        let ix = id.0.checked_sub(self.base)? as usize;
        self.slots.get_mut(ix)?.as_mut()
    }

    fn remove(&mut self, id: PacketId) -> Option<LiveSpan> {
        let ix = id.0.checked_sub(self.base)? as usize;
        let s = self.slots.get_mut(ix)?.take();
        if s.is_some() {
            self.len -= 1;
            // Slide the window past leading vacancies so it stays as narrow
            // as the live set (the ring keeps its capacity).
            while let Some(None) = self.slots.front() {
                self.slots.pop_front();
                self.base += 1;
            }
        }
        s
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Folds the flight-recorder event stream into per-packet latency spans
/// plus per-router / per-link contention counters.
///
/// Only packets whose `packet_created` event was observed are profiled;
/// events for packets already in flight when the recorder was installed
/// are ignored.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    live: DenseSpanMap,
    finished: Vec<PacketSpan>,
    router_blocked: Vec<u64>,
    link_blocked: Vec<u64>,
    popups: u64,
}

fn bump(v: &mut Vec<u64>, idx: usize, by: u64) {
    if v.len() <= idx {
        v.resize(idx + 1, 0);
    }
    v[idx] += by;
}

impl SpanRecorder {
    /// A fresh recorder with no observed packets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one flight-recorder event.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::PacketCreated {
                at,
                packet,
                src,
                dest,
                vnet,
                len_flits,
            } => {
                self.live.insert(
                    packet,
                    LiveSpan {
                        src,
                        dest,
                        vnet,
                        len_flits,
                        created_at: at,
                        injected_at: None,
                        vc_alloc: 0,
                        sa_wait: 0,
                        credit: 0,
                        wait_ack: 0,
                        locate: 0,
                        pop: 0,
                        hops: 0,
                        bypass_hops: 0,
                        waits: Vec::new(),
                    },
                );
            }
            TraceEvent::PacketInjected { at, packet, .. } => {
                if let Some(s) = self.live.get_mut(packet) {
                    s.injected_at.get_or_insert(at);
                }
            }
            TraceEvent::Blocked {
                packet,
                node,
                out_port,
                reason,
                ..
            } => {
                bump(&mut self.router_blocked, node.index(), 1);
                if let Some(out) = out_port {
                    bump(
                        &mut self.link_blocked,
                        node.index() * Port::COUNT + out.index(),
                        1,
                    );
                }
                if let Some(s) = self.live.get_mut(packet) {
                    match reason {
                        BlockReason::Credit => s.credit += 1,
                        BlockReason::VcAlloc => s.vc_alloc += 1,
                        BlockReason::SwitchAlloc => s.sa_wait += 1,
                    }
                    match s.waits.iter_mut().find(|(n, _)| *n == node) {
                        Some((_, c)) => *c += 1,
                        None => s.waits.push((node, 1)),
                    }
                }
            }
            TraceEvent::VcAllocated { packet, .. } => {
                if let Some(s) = self.live.get_mut(packet) {
                    s.hops += 1;
                }
            }
            TraceEvent::BypassHop { packet, .. } => {
                if let Some(s) = self.live.get_mut(packet) {
                    s.bypass_hops += 1;
                }
            }
            TraceEvent::PopupSpan {
                packet,
                wait_ack,
                locate,
                pop,
                ..
            } => {
                self.popups += 1;
                if let Some(s) = self.live.get_mut(packet) {
                    s.wait_ack += wait_ack;
                    s.locate += locate;
                    s.pop += pop;
                }
            }
            TraceEvent::PacketEjected {
                at,
                packet,
                net_latency,
                ..
            } => {
                let Some(s) = self.live.remove(packet) else {
                    return;
                };
                let injected_at = s.injected_at.unwrap_or(at - net_latency);
                let attributed = s.vc_alloc + s.sa_wait + s.credit + s.wait_ack + s.locate + s.pop;
                self.finished.push(PacketSpan {
                    packet,
                    src: s.src,
                    dest: s.dest,
                    vnet: s.vnet,
                    len_flits: s.len_flits,
                    created_at: s.created_at,
                    injected_at,
                    ejected_at: at,
                    inj_queue: injected_at - s.created_at,
                    vc_alloc: s.vc_alloc,
                    sa_wait: s.sa_wait,
                    credit: s.credit,
                    wait_ack: s.wait_ack,
                    locate: s.locate,
                    pop: s.pop,
                    serialization: net_latency.saturating_sub(attributed),
                    hops: s.hops,
                    bypass_hops: s.bypass_hops,
                    waits: s.waits,
                });
            }
            TraceEvent::BypassPop { .. }
            | TraceEvent::ControlHop { .. }
            | TraceEvent::PopupStage { .. } => {}
        }
    }

    /// Takes every span completed since the last drain (oldest first).
    pub fn drain_finished(&mut self) -> Vec<PacketSpan> {
        std::mem::take(&mut self.finished)
    }

    /// Spans completed since the last drain, without consuming them.
    pub fn finished(&self) -> &[PacketSpan] {
        &self.finished
    }

    /// Packets observed as created but not yet ejected.
    pub fn live_packets(&self) -> usize {
        self.live.len()
    }

    /// Completed popups observed.
    pub fn popups(&self) -> u64 {
        self.popups
    }

    /// Blocked VC-cycles per router, dense by node index (possibly shorter
    /// than the node count; missing tail entries are zero).
    pub fn router_blocked(&self) -> &[u64] {
        &self.router_blocked
    }

    /// Blocked VC-cycles per outgoing link, flat-indexed
    /// `node * Port::COUNT + port` (same layout as
    /// [`crate::stats::NetStats::link_flits`]).
    pub fn link_blocked(&self) -> &[u64] {
        &self.link_blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn created(packet: u64, at: Cycle) -> TraceEvent {
        TraceEvent::PacketCreated {
            at,
            packet: PacketId(packet),
            src: NodeId(0),
            dest: NodeId(9),
            vnet: VnetId(0),
            len_flits: 3,
        }
    }

    #[test]
    fn span_decomposes_phases_and_residual() {
        let mut r = SpanRecorder::new();
        r.observe(&created(1, 10));
        r.observe(&TraceEvent::PacketInjected {
            at: 14,
            packet: PacketId(1),
            node: NodeId(0),
        });
        for (at, reason) in [
            (15, BlockReason::VcAlloc),
            (16, BlockReason::VcAlloc),
            (17, BlockReason::Credit),
            (18, BlockReason::SwitchAlloc),
        ] {
            r.observe(&TraceEvent::Blocked {
                at,
                packet: PacketId(1),
                node: NodeId(4),
                in_port: Port::West,
                vc_flat: 0,
                out_port: Some(Port::East),
                reason,
            });
        }
        r.observe(&TraceEvent::VcAllocated {
            at: 19,
            packet: PacketId(1),
            node: NodeId(4),
            in_port: Port::West,
            vc_flat: 0,
            out_port: Port::East,
            out_vc: 0,
        });
        r.observe(&TraceEvent::PopupSpan {
            node: NodeId(4),
            vnet: VnetId(0),
            packet: PacketId(1),
            detected_at: 20,
            completed_at: 30,
            wait_ack: 6,
            locate: 1,
            pop: 3,
        });
        r.observe(&TraceEvent::PacketEjected {
            at: 40,
            packet: PacketId(1),
            node: NodeId(9),
            net_latency: 26,
            total_latency: 30,
        });

        let spans = r.drain_finished();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.inj_queue, 4);
        assert_eq!((s.vc_alloc, s.sa_wait, s.credit), (2, 1, 1));
        assert_eq!((s.wait_ack, s.locate, s.pop), (6, 1, 3));
        // 26 net - (2+1+1 blocked) - (6+1+3 upp) = 12 residual.
        assert_eq!(s.serialization, 12);
        assert_eq!(s.net_latency(), 26);
        assert_eq!(s.total_latency(), 30);
        assert_eq!(s.hops, 1);
        assert_eq!(s.waits, vec![(NodeId(4), 4)]);
        assert_eq!(r.popups(), 1);
        assert_eq!(r.router_blocked()[4], 4);
        assert_eq!(r.link_blocked()[4 * Port::COUNT + Port::East.index()], 4);
        assert!(r.drain_finished().is_empty(), "drain consumes");
    }

    #[test]
    fn residual_clamps_when_blocked_counts_exceed_net_latency() {
        let mut r = SpanRecorder::new();
        r.observe(&created(2, 0));
        // A worm stalled in two routers at once: 10 blocked VC-cycles
        // against a net latency of 6.
        for at in 0..5 {
            for node in [3u32, 4] {
                r.observe(&TraceEvent::Blocked {
                    at,
                    packet: PacketId(2),
                    node: NodeId(node),
                    in_port: Port::North,
                    vc_flat: 0,
                    out_port: None,
                    reason: BlockReason::Credit,
                });
            }
        }
        r.observe(&TraceEvent::PacketEjected {
            at: 6,
            packet: PacketId(2),
            node: NodeId(9),
            net_latency: 6,
            total_latency: 6,
        });
        let s = &r.drain_finished()[0];
        assert_eq!(s.credit, 10);
        assert_eq!(s.serialization, 0, "residual clamps at zero");
    }

    #[test]
    fn unobserved_packets_are_ignored() {
        let mut r = SpanRecorder::new();
        r.observe(&TraceEvent::PacketEjected {
            at: 5,
            packet: PacketId(99),
            node: NodeId(1),
            net_latency: 3,
            total_latency: 5,
        });
        assert!(r.finished().is_empty());
        assert_eq!(r.live_packets(), 0);
    }
}
