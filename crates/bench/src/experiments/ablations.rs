//! Ablation studies of the design choices DESIGN.md calls out (not in the
//! paper, but quantifying its claims):
//!
//! 1. **Composable restriction structure** — the published funneled pattern
//!    vs the minimal CDG search: how much of composable's penalty is the
//!    structure rather than the acyclicity requirement itself?
//! 2. **UPP popup concurrency** — the destination-keyed circuit table vs the
//!    paper's per-chiplet serialization alternative (Sec. V-B5).
//! 3. **Flow control** — UPP under wormhole vs virtual cut-through
//!    (Table I's flow-control modularity column).

use super::{cfg, rates_1vc, windows, SEED};
use crate::report::{f1, f3, ExperimentResult, MarkdownTable};
use crate::sweep::{engine, sweep_rates};
use serde::Serialize;
use std::sync::Arc;
use upp_baselines::composable::ComposableConfig;
use upp_core::{Upp, UppConfig};
use upp_noc::config::NocConfig;
use upp_noc::network::Network;
use upp_noc::ni::ConsumePolicy;
use upp_noc::sim::System;
use upp_noc::topology::ChipletSystemSpec;
use upp_workloads::runner::{presaturation_latency, saturation_throughput, SchemeKind, SweepPoint};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

/// One ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Study this row belongs to.
    pub study: String,
    /// Variant label.
    pub variant: String,
    /// Saturation throughput.
    pub saturation: f64,
    /// Pre-saturation latency.
    pub presat_latency: f64,
}

fn measure_points(points: &[SweepPoint], study: &str, variant: &str) -> Row {
    Row {
        study: study.into(),
        variant: variant.into(),
        saturation: saturation_throughput(points),
        presat_latency: presaturation_latency(points),
    }
}

/// Sweeps a pre-built system constructor over the 1 VC rate grid.
fn sweep_custom(
    build: impl Fn(u64) -> System + Sync,
    rates: &[f64],
    w: upp_workloads::runner::SweepWindows,
) -> Vec<SweepPoint> {
    let build = &build;
    engine().map(rates, |_, &rate| {
        let mut sys = build(SEED);
        let mut traffic =
            SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, rate, SEED);
        for _ in 0..w.warmup {
            traffic.tick(&mut sys);
            sys.step();
        }
        sys.net_mut().reset_stats();
        for _ in 0..w.measure {
            traffic.tick(&mut sys);
            sys.step();
        }
        let stats = sys.net().stats();
        SweepPoint {
            rate,
            net_latency: stats.avg_net_latency(),
            queue_latency: stats.avg_queue_latency(),
            total_latency: stats.avg_total_latency(),
            throughput: stats.throughput(w.measure, sys.net().topo().num_endpoints()),
            packets_ejected: stats.packets_ejected,
            upward_packets: 0,
            control_hops: stats.control_hops,
            p50: stats.latency_percentile(0.5),
            p95: stats.latency_percentile(0.95),
            p99: stats.latency_percentile(0.99),
            p999: stats.latency_percentile(0.999),
            deadlocked: stats.packets_ejected == 0,
            alerts: upp_workloads::runner::AlertCounts::default(),
        }
    })
}

/// Collects all three ablation studies.
pub fn collect(quick: bool) -> Vec<Row> {
    let spec = ChipletSystemSpec::baseline();
    let w = windows(quick);
    let rates = rates_1vc(quick);
    let mut rows = Vec::new();

    // --- Study 1: composable structure ---------------------------------
    let pts = sweep_rates(
        "ablations",
        &spec,
        &cfg(1),
        &SchemeKind::Composable,
        0,
        Pattern::UniformRandom,
        &rates,
        w,
        SEED,
    );
    rows.push(measure_points(
        &pts,
        "composable-structure",
        "funneled (published)",
    ));
    {
        let topo = spec.build(SEED).expect("baseline builds");
        let balanced =
            Arc::new(ComposableConfig::build_balanced(&topo).expect("balanced search succeeds"));
        let routing = balanced.routing();
        let spec2 = spec.clone();
        let build = move |seed: u64| {
            let topo = spec2.build(SEED).expect("baseline builds");
            let net = Network::new(
                cfg(1),
                topo,
                Arc::new(routing.clone()),
                ConsumePolicy::Immediate { latency: 1 },
                seed,
            );
            // The balanced restriction set is still provably acyclic, so no
            // recovery scheme is needed.
            System::new(net, Box::new(upp_noc::NoScheme))
        };
        let pts = sweep_custom(build, &rates, w);
        rows.push(measure_points(
            &pts,
            "composable-structure",
            "balanced (minimal search)",
        ));
    }
    let pts = sweep_rates(
        "ablations",
        &spec,
        &cfg(1),
        &SchemeKind::Upp(UppConfig::default()),
        0,
        Pattern::UniformRandom,
        &rates,
        w,
        SEED,
    );
    rows.push(measure_points(
        &pts,
        "composable-structure",
        "UPP (reference)",
    ));

    // --- Study 2: popup concurrency ------------------------------------
    for (label, ucfg) in [
        ("destination-keyed circuits (default)", UppConfig::default()),
        (
            "serialized per chiplet (Sec. V-B5 alternative)",
            UppConfig {
                serialize_per_chiplet: true,
                ..UppConfig::default()
            },
        ),
    ] {
        let pts = sweep_rates(
            "ablations",
            &spec,
            &cfg(1),
            &SchemeKind::Upp(ucfg),
            0,
            Pattern::UniformRandom,
            &rates,
            w,
            SEED,
        );
        rows.push(measure_points(&pts, "popup-concurrency", label));
    }

    // --- Study 3: flow control -----------------------------------------
    for (label, base) in [
        (
            "wormhole (depth 5)",
            NocConfig::default().with_vc_buffer_depth(5),
        ),
        (
            "virtual cut-through (depth 5)",
            NocConfig::default().with_virtual_cut_through(),
        ),
    ] {
        let build = {
            let base = base.clone();
            let spec2 = spec.clone();
            move |seed: u64| {
                let topo = spec2.build(SEED).expect("baseline builds");
                let net = Network::new(
                    base.clone(),
                    topo,
                    Arc::new(upp_noc::routing::ChipletRouting::xy()),
                    ConsumePolicy::Immediate { latency: 1 },
                    seed,
                );
                System::new(net, Box::new(Upp::new(UppConfig::default())))
            }
        };
        let pts = sweep_custom(build, &rates, w);
        rows.push(measure_points(&pts, "flow-control", label));
    }
    rows
}

/// Runs the ablations and renders them.
pub fn run(quick: bool) -> ExperimentResult {
    let rows = collect(quick);
    let mut out = String::new();
    out.push_str("### Ablations — quantifying the design choices (uniform random, 1 VC)\n\n");
    let mut t = MarkdownTable::new(["study", "variant", "saturation", "pre-sat latency"]);
    for r in &rows {
        t.row([
            r.study.clone(),
            r.variant.clone(),
            f3(r.saturation),
            f1(r.presat_latency),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReadings: the balanced (minimal) composable search shows how much of the \
         published composable penalty comes from its funneled restriction structure; \
         per-chiplet popup serialization trades the destination-keyed circuit table for \
         less recovery concurrency; VCT behaves like wormhole at equal buffer depth.\n",
    );
    ExperimentResult::new("ablations", "Ablation studies", out, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_have_the_expected_ordering() {
        let rows = collect(true);
        let sat = |study: &str, variant_prefix: &str| {
            rows.iter()
                .find(|r| r.study == study && r.variant.starts_with(variant_prefix))
                .unwrap_or_else(|| panic!("{study}/{variant_prefix}"))
                .saturation
        };
        // The minimal restriction set must beat the published funneled one.
        assert!(
            sat("composable-structure", "balanced") >= sat("composable-structure", "funneled"),
            "minimal restrictions cannot be slower than funneled ones"
        );
        // Both flow controls must reach comparable saturation under UPP.
        let wh = sat("flow-control", "wormhole");
        let vct = sat("flow-control", "virtual");
        assert!(
            (vct / wh) > 0.7 && (vct / wh) < 1.4,
            "VCT and wormhole should be comparable: {vct} vs {wh}"
        );
    }
}
