//! The system wrapper: network + scheme, and simple run loops.

use crate::ids::{Cycle, NodeId, PacketId, VnetId};
use crate::network::Network;
use crate::scheme::Scheme;

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All packets drained.
    Drained {
        /// Cycle at which the network emptied.
        at: Cycle,
    },
    /// The watchdog detected a global stall (deadlock) with packets in
    /// flight.
    Deadlocked {
        /// Cycle of the last flit movement.
        last_progress: Cycle,
        /// Packets still in flight.
        in_flight: usize,
    },
    /// The cycle budget ran out with packets still in flight.
    Timeout {
        /// Packets still in flight.
        in_flight: usize,
    },
}

/// A network paired with a deadlock-freedom scheme.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use upp_noc::config::NocConfig;
/// use upp_noc::ids::VnetId;
/// use upp_noc::network::Network;
/// use upp_noc::ni::ConsumePolicy;
/// use upp_noc::routing::ChipletRouting;
/// use upp_noc::scheme::NoScheme;
/// use upp_noc::sim::System;
/// use upp_noc::topology::ChipletSystemSpec;
///
/// let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
/// let net = Network::new(
///     NocConfig::default(),
///     topo,
///     Arc::new(ChipletRouting::xy()),
///     ConsumePolicy::Immediate { latency: 1 },
///     1,
/// );
/// let mut sys = System::new(net, Box::new(NoScheme));
/// let src = sys.net().topo().chiplets()[0].routers[0];
/// let dest = sys.net().topo().chiplets()[0].routers[3];
/// sys.send(src, dest, VnetId(0), 1).expect("queue has space");
/// let outcome = sys.run_until_drained(1_000);
/// assert!(matches!(outcome, upp_noc::sim::RunOutcome::Drained { .. }));
/// ```
pub struct System {
    net: Network,
    scheme: Box<dyn Scheme>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("scheme", &self.scheme.name())
            .field("net", &self.net)
            .finish()
    }
}

impl System {
    /// Pairs a network with a scheme.
    pub fn new(net: Network, scheme: Box<dyn Scheme>) -> Self {
        Self { net, scheme }
    }

    /// The network.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Mutable network access (workload-facing).
    pub fn net_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Selects the sharded parallel kernel (see [`Network::set_shards`]);
    /// returns the effective shard count.
    pub fn set_shards(&mut self, shards: usize) -> usize {
        self.net.set_shards(shards)
    }

    /// The scheme's name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// Scheme access for downcasting in experiment harnesses.
    pub fn scheme(&self) -> &dyn Scheme {
        self.scheme.as_ref()
    }

    /// Mutable scheme access.
    pub fn scheme_mut(&mut self) -> &mut dyn Scheme {
        self.scheme.as_mut()
    }

    /// Splits the system into the network and the scheme (for harnesses that
    /// need simultaneous mutable access).
    pub fn parts_mut(&mut self) -> (&mut Network, &mut dyn Scheme) {
        (&mut self.net, self.scheme.as_mut())
    }

    /// Deadlock forensics for the current network state (see
    /// [`Network::stall_report`]).
    pub fn stall_report(&self) -> crate::trace::StallReport {
        self.net.stall_report()
    }

    /// Enqueues a packet and runs the scheme's creation hook.
    pub fn send(
        &mut self,
        src: NodeId,
        dest: NodeId,
        vnet: VnetId,
        len_flits: u16,
    ) -> Option<PacketId> {
        let id = self.net.try_send(src, dest, vnet, len_flits)?;
        self.scheme.on_packet_created(&mut self.net, id, src, dest);
        Some(id)
    }

    /// Runs one full cycle with scheme hooks.
    pub fn step(&mut self) {
        self.net.begin_cycle();
        self.scheme.pre_cycle(&mut self.net);
        self.net.finish_cycle();
        self.scheme.post_cycle(&mut self.net);
    }

    /// Runs the scheme's telemetry-sampling hook (no-op while the
    /// network's obs registry is disabled). Drivers call this at epoch
    /// boundaries — and once before cutting the final summary — so
    /// sampled gauges/distributions are current.
    pub fn observe(&mut self) {
        if self.net.obs().is_enabled() {
            self.scheme.observe(&mut self.net);
        }
    }

    /// Runs exactly `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Steps until the network drains, deadlocks, or `max_cycles` elapse.
    ///
    /// When the active-set scheduler is on and the network goes quiescent
    /// (typically the tail of a drain: the last flits are in flight on
    /// links, every router and NI is idle), the clock fast-forwards
    /// straight to the next staged event instead of spinning no-op cycles.
    /// The scheme's [`Scheme::advance_to`] hook can veto any jump, and
    /// every skipped cycle is provably a no-op, so outcomes — including the
    /// exact `Drained` cycle — are identical to per-cycle stepping.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> RunOutcome {
        let deadline = self.net.cycle().saturating_add(max_cycles);
        while self.net.cycle() < deadline {
            if self.net.in_flight() == 0 {
                return RunOutcome::Drained {
                    at: self.net.cycle(),
                };
            }
            if self.net.stalled() {
                return RunOutcome::Deadlocked {
                    last_progress: self.net.last_progress(),
                    in_flight: self.net.in_flight(),
                };
            }
            if let Some(target) = self.net.fast_forward_target() {
                if target < deadline && self.scheme.advance_to(&self.net, self.net.cycle(), target)
                {
                    self.net.advance_to(target);
                }
            }
            self.step();
        }
        if self.net.in_flight() == 0 {
            RunOutcome::Drained {
                at: self.net.cycle(),
            }
        } else if self.net.stalled() {
            RunOutcome::Deadlocked {
                last_progress: self.net.last_progress(),
                in_flight: self.net.in_flight(),
            }
        } else {
            RunOutcome::Timeout {
                in_flight: self.net.in_flight(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::network::Network;
    use crate::ni::ConsumePolicy;
    use crate::routing::ChipletRouting;
    use crate::scheme::NoScheme;
    use crate::topology::ChipletSystemSpec;
    use std::sync::Arc;

    fn sys() -> System {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        let net = Network::new(
            NocConfig::default(),
            topo,
            Arc::new(ChipletRouting::xy()),
            ConsumePolicy::Immediate { latency: 1 },
            3,
        );
        System::new(net, Box::new(NoScheme))
    }

    #[test]
    fn drain_outcome() {
        let mut s = sys();
        let src = s.net().topo().chiplets()[0].routers[0];
        let dest = s.net().topo().chiplets()[1].routers[9];
        s.send(src, dest, VnetId(0), 5).unwrap();
        match s.run_until_drained(1_000) {
            RunOutcome::Drained { at } => assert!(at > 0),
            other => panic!("expected drain, got {other:?}"),
        }
    }

    #[test]
    fn run_advances_clock() {
        let mut s = sys();
        s.run(10);
        assert_eq!(s.net().cycle(), 10);
    }
}
