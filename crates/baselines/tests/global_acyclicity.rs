//! Formal validation of composable routing: the *actual-use* global channel
//! dependency graph under its restricted selections is acyclic — deadlock
//! freedom is structural, not a lucky property of sampled traffic.

use upp_baselines::composable::{Composable, ComposableConfig};
use upp_noc::ids::Port;
use upp_noc::routing::{ChipletRouting, GlobalCdg};
use upp_noc::topology::{ChipletSystemSpec, SystemKind};

#[test]
fn funneled_composable_is_globally_acyclic_on_all_system_kinds() {
    for kind in [
        SystemKind::Baseline,
        SystemKind::Large,
        SystemKind::BoundaryCount(2),
        SystemKind::BoundaryCount(8),
    ] {
        let topo = ChipletSystemSpec::of_kind(kind).build(0).unwrap();
        let (_, routing) = Composable::build(&topo).unwrap();
        let cdg = GlobalCdg::build(&topo, &routing);
        assert!(
            cdg.is_acyclic(),
            "{kind:?}: composable's actual-use CDG must be acyclic; \
             found cycle {:?}",
            cdg.find_cycle()
        );
    }
}

#[test]
fn balanced_composable_is_also_globally_acyclic() {
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let cfg = std::sync::Arc::new(ComposableConfig::build_balanced(&topo).unwrap());
    let routing = cfg.routing();
    let cdg = GlobalCdg::build(&topo, &routing);
    assert!(cdg.is_acyclic(), "cycle: {:?}", cdg.find_cycle());
}

#[test]
fn unrestricted_routing_is_cyclic_by_contrast() {
    // The same analysis applied to UPP's unrestricted routing finds cycles —
    // the difference between the two graphs is exactly what UPP recovers
    // from at runtime instead of preventing at design time.
    let topo = ChipletSystemSpec::baseline().build(0).unwrap();
    let cdg = GlobalCdg::build(&topo, &ChipletRouting::xy());
    let cycle = cdg.find_cycle().expect("unrestricted routing has cycles");
    assert!(cycle.iter().any(|c| c.out == Port::Up));
}
