//! A MESI-style directory-coherence traffic engine — the full-system
//! substitute for the gem5 PARSEC/SPLASH-2 runs of Figs. 8/12/15.
//!
//! Every chiplet router hosts a core; eight directories live on the
//! interposer (Table II). Three message classes map onto the three VNets of
//! the paper's configuration:
//!
//! * VNet 0 — requests (core → directory, 1-flit control);
//! * VNet 1 — forwards (directory → sharer core, 1-flit control);
//! * VNet 2 — data responses and writebacks (5-flit data).
//!
//! The message-dependency chain request → forward → response is acyclic, so
//! protocol deadlocks are excluded by the VNets (the paper's footnote 1);
//! what remains is exactly the routing-deadlock exposure UPP targets.
//! Consumption follows the rule of Sec. V-B4: responses are always consumed;
//! requests and forwards are consumed only when the reply they generate has
//! injection-queue space, so ejection queues drain and `UPP_req` reservations
//! eventually succeed.

use crate::profiles::BenchmarkProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use upp_noc::ids::{Cycle, NodeId, PacketId, VnetId};
use upp_noc::sim::System;
use upp_noc::topology::Topology;

const VNET_REQ: VnetId = VnetId(0);
const VNET_FWD: VnetId = VnetId(1);
const VNET_RESP: VnetId = VnetId(2);

/// Why a packet was sent (tracked out of band; real hardware would carry it
/// in the packet payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MsgKind {
    /// Core -> directory request; the directory must answer `requester`.
    Request { requester: NodeId },
    /// Directory -> sharer forward; the sharer must send data to
    /// `requester`.
    Forward { requester: NodeId },
    /// Data to a core: completes that core's transaction.
    Response,
    /// Dirty data to a directory: terminating.
    Writeback,
}

#[derive(Debug, Clone, Copy, Default)]
struct CoreState {
    issued: u64,
    completed: u64,
    outstanding: usize,
}

/// Outcome of a full coherence run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeResult {
    /// Cycles until every core finished its transactions.
    pub cycles: Cycle,
    /// Total packets delivered.
    pub packets: u64,
    /// Total flits delivered.
    pub flits: u64,
    /// Mean packet network latency.
    pub avg_net_latency: f64,
    /// True if the run hit the cycle cap or wedged (never with a working
    /// scheme).
    pub incomplete: bool,
}

/// The coherence engine driving one [`System`].
pub struct CoherenceEngine {
    profile: BenchmarkProfile,
    cores: Vec<NodeId>,
    core_state: Vec<CoreState>,
    dirs: Vec<NodeId>,
    kinds: HashMap<PacketId, MsgKind>,
    rng: SmallRng,
    data_flits: u16,
    /// Packets the engine failed to enqueue and must retry.
    backlog: Vec<(NodeId, NodeId, VnetId, u16, MsgKind)>,
}

impl std::fmt::Debug for CoherenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoherenceEngine")
            .field("benchmark", &self.profile.name)
            .field("cores", &self.cores.len())
            .field("dirs", &self.dirs.len())
            .finish_non_exhaustive()
    }
}

/// Picks the eight directory nodes: evenly spread interposer routers
/// (Table II: "8 directories on the interposer").
pub fn directory_nodes(topo: &Topology) -> Vec<NodeId> {
    let routers = topo.interposer_routers();
    let step = (routers.len() / 8).max(1);
    routers.iter().copied().step_by(step).take(8).collect()
}

impl CoherenceEngine {
    /// Creates an engine for `profile` over the system's topology.
    pub fn new(sys: &System, profile: BenchmarkProfile, seed: u64) -> Self {
        let topo = sys.net().topo();
        let cores: Vec<NodeId> = topo
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect();
        let dirs = directory_nodes(topo);
        let n = cores.len();
        Self {
            profile,
            cores,
            core_state: vec![CoreState::default(); n],
            dirs,
            kinds: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed ^ 0x5a17_c0de_5eed_0001),
            data_flits: sys.net().cfg().data_packet_flits as u16,
            backlog: Vec::new(),
        }
    }

    /// True when every core has completed its transaction quota and the
    /// network has drained.
    pub fn done(&self, sys: &System) -> bool {
        self.backlog.is_empty()
            && sys.net().in_flight() == 0
            && self
                .core_state
                .iter()
                .all(|c| c.completed >= self.profile.transactions)
    }

    /// Total transactions completed so far.
    pub fn completed(&self) -> u64 {
        self.core_state.iter().map(|c| c.completed).sum()
    }

    fn send(
        &mut self,
        sys: &mut System,
        src: NodeId,
        dest: NodeId,
        vnet: VnetId,
        len: u16,
        kind: MsgKind,
    ) {
        match sys.send(src, dest, vnet, len) {
            Some(id) => {
                self.kinds.insert(id, kind);
            }
            None => self.backlog.push((src, dest, vnet, len, kind)),
        }
    }

    /// One engine cycle: consume deliveries per the Sec. V-B4 rule, then
    /// issue new requests. Call before `System::step`.
    pub fn tick(&mut self, sys: &mut System) {
        // Retry backlogged sends first (sources whose queues were full).
        let backlog = std::mem::take(&mut self.backlog);
        for (src, dest, vnet, len, kind) in backlog {
            self.send(sys, src, dest, vnet, len, kind);
        }

        // Directory-side consumption.
        for di in 0..self.dirs.len() {
            let d = self.dirs[di];
            // Writebacks (responses class) are terminating: always consume.
            while let Some(del) = sys.net_mut().pop_delivered(d, VNET_RESP) {
                let kind = self.kinds.remove(&del.pkt.id);
                debug_assert!(matches!(kind, Some(MsgKind::Writeback)));
            }
            // Requests: consume only when the reply can be buffered
            // (response or forward injection space), mirroring the paper's
            // PE rule so ejection entries always eventually free up.
            loop {
                let can_reply =
                    sys.net().ni(d).can_enqueue(VNET_RESP) && sys.net().ni(d).can_enqueue(VNET_FWD);
                if !can_reply {
                    break;
                }
                let Some(del) = sys.net_mut().pop_delivered(d, VNET_REQ) else {
                    break;
                };
                let Some(MsgKind::Request { requester }) = self.kinds.remove(&del.pkt.id) else {
                    debug_assert!(false, "directory got a non-request on VNet 0");
                    continue;
                };
                if self.rng.gen::<f64>() < self.profile.fwd_prob {
                    // 3-hop: forward to a sharer that owns the line.
                    let sharer = self.pick_sharer(sys, requester);
                    self.send(sys, d, sharer, VNET_FWD, 1, MsgKind::Forward { requester });
                } else {
                    self.send(
                        sys,
                        d,
                        requester,
                        VNET_RESP,
                        self.data_flits,
                        MsgKind::Response,
                    );
                }
            }
        }

        // Core-side consumption.
        for ci in 0..self.cores.len() {
            let c = self.cores[ci];
            // Responses terminate: always consume.
            while let Some(del) = sys.net_mut().pop_delivered(c, VNET_RESP) {
                let kind = self.kinds.remove(&del.pkt.id);
                debug_assert!(matches!(kind, Some(MsgKind::Response)));
                let st = &mut self.core_state[ci];
                st.outstanding = st.outstanding.saturating_sub(1);
                st.completed += 1;
                // Occasionally the line was dirty: emit a writeback.
                if self.rng.gen::<f64>() < self.profile.wb_prob {
                    let d = self.dirs[self.rng.gen_range(0..self.dirs.len())];
                    self.send(sys, c, d, VNET_RESP, self.data_flits, MsgKind::Writeback);
                }
            }
            // Forwards: consumed when the data response can be buffered.
            while sys.net().ni(c).can_enqueue(VNET_RESP) {
                let Some(del) = sys.net_mut().pop_delivered(c, VNET_FWD) else {
                    break;
                };
                let Some(MsgKind::Forward { requester }) = self.kinds.remove(&del.pkt.id) else {
                    debug_assert!(false, "core got a non-forward on VNet 1");
                    continue;
                };
                self.send(
                    sys,
                    c,
                    requester,
                    VNET_RESP,
                    self.data_flits,
                    MsgKind::Response,
                );
            }
        }

        // Issue new requests.
        let now = sys.net().cycle();
        let intensity = self.profile.intensity_at(now);
        for ci in 0..self.cores.len() {
            let st = self.core_state[ci];
            if st.outstanding >= self.profile.window
                || st.issued >= self.profile.transactions
                || self.rng.gen::<f64>() >= intensity
            {
                continue;
            }
            let c = self.cores[ci];
            let d = self.dirs[self.rng.gen_range(0..self.dirs.len())];
            self.core_state[ci].issued += 1;
            self.core_state[ci].outstanding += 1;
            self.send(sys, c, d, VNET_REQ, 1, MsgKind::Request { requester: c });
        }
    }

    fn pick_sharer(&mut self, sys: &System, requester: NodeId) -> NodeId {
        let topo = sys.net().topo();
        if self.rng.gen::<f64>() < self.profile.local_sharer {
            let c = topo.chiplet_of(requester).expect("cores live in chiplets");
            let routers = &topo.chiplet(c).routers;
            loop {
                let s = routers[self.rng.gen_range(0..routers.len())];
                if s != requester {
                    return s;
                }
            }
        }
        loop {
            let s = self.cores[self.rng.gen_range(0..self.cores.len())];
            if s != requester {
                return s;
            }
        }
    }
}

/// Runs `profile` to completion on `sys`, returning the runtime.
///
/// `cap` bounds the run; hitting it (or a watchdog stall) marks the result
/// incomplete.
pub fn run_benchmark(
    sys: &mut System,
    profile: BenchmarkProfile,
    seed: u64,
    cap: Cycle,
) -> RuntimeResult {
    let mut engine = CoherenceEngine::new(sys, profile, seed);
    let mut incomplete = false;
    while !engine.done(sys) {
        if sys.net().cycle() >= cap || sys.net().stalled() {
            incomplete = true;
            break;
        }
        engine.tick(sys);
        sys.step();
    }
    // Pop any terminating messages (writebacks) delivered by the final step.
    engine.tick(sys);
    let stats = sys.net().stats();
    RuntimeResult {
        cycles: sys.net().cycle(),
        packets: stats.packets_ejected,
        flits: stats.flits_ejected,
        avg_net_latency: stats.avg_net_latency(),
        incomplete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::benchmark;
    use crate::runner::{build_system, SchemeKind};
    use upp_core::UppConfig;
    use upp_noc::config::NocConfig;
    use upp_noc::ni::ConsumePolicy;
    use upp_noc::topology::ChipletSystemSpec;

    fn quick_profile() -> BenchmarkProfile {
        let mut b = benchmark("bodytrack").unwrap();
        b.transactions = 40;
        b
    }

    fn build(kind: &SchemeKind, seed: u64) -> System {
        build_system(
            &ChipletSystemSpec::baseline(),
            NocConfig::default(),
            kind,
            0,
            seed,
            ConsumePolicy::External,
        )
        .sys
    }

    #[test]
    fn benchmark_completes_under_upp() {
        let mut sys = build(&SchemeKind::Upp(UppConfig::default()), 1);
        let r = run_benchmark(&mut sys, quick_profile(), 1, 2_000_000);
        assert!(!r.incomplete, "run must finish: {r:?}");
        // Each transaction is >= 2 packets (request + response).
        assert!(r.packets >= 2 * 40 * 64, "packets {}", r.packets);
        assert!(r.avg_net_latency > 0.0);
    }

    #[test]
    fn benchmark_completes_under_all_schemes() {
        for kind in SchemeKind::evaluated() {
            let mut sys = build(&kind, 2);
            let r = run_benchmark(&mut sys, quick_profile(), 2, 2_000_000);
            assert!(!r.incomplete, "{}: {r:?}", kind.label());
        }
    }

    #[test]
    fn directories_are_on_the_interposer() {
        let sys = build(&SchemeKind::Upp(UppConfig::default()), 3);
        let dirs = directory_nodes(sys.net().topo());
        assert_eq!(dirs.len(), 8);
        for d in dirs {
            assert!(sys.net().topo().is_interposer(d));
        }
    }

    #[test]
    fn transaction_accounting_balances() {
        let mut sys = build(&SchemeKind::Upp(UppConfig::default()), 4);
        let profile = quick_profile();
        let mut engine = CoherenceEngine::new(&sys, profile, 4);
        let cap = 2_000_000;
        while !engine.done(&sys) && sys.net().cycle() < cap {
            engine.tick(&mut sys);
            sys.step();
        }
        assert!(engine.done(&sys), "engine must converge");
        engine.tick(&mut sys); // pop terminating messages from the last step
        assert_eq!(engine.completed(), 40 * 64);
        // All out-of-band metadata consumed: nothing leaked.
        assert!(
            engine.kinds.is_empty(),
            "{} stale packet kinds",
            engine.kinds.len()
        );
    }

    #[test]
    fn heavier_profiles_generate_more_packets() {
        let mut light = benchmark("blackscholes").unwrap();
        light.transactions = 30;
        let mut heavy = benchmark("canneal").unwrap();
        heavy.transactions = 30;
        let mut s1 = build(&SchemeKind::Upp(UppConfig::default()), 5);
        let r1 = run_benchmark(&mut s1, light, 5, 2_000_000);
        let mut s2 = build(&SchemeKind::Upp(UppConfig::default()), 5);
        let r2 = run_benchmark(&mut s2, heavy, 5, 2_000_000);
        assert!(!r1.incomplete && !r2.incomplete);
        assert!(
            r2.packets > r1.packets,
            "canneal ({}) must out-traffic blackscholes ({})",
            r2.packets,
            r1.packets
        );
        assert!(r1.cycles > 0 && r2.cycles > 0);
    }
}
