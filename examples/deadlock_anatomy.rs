//! Anatomy of an integration-induced deadlock.
//!
//! Runs the *same* traffic twice: once on the unprotected baseline system —
//! which wedges — and once under UPP — which detects the upward packets and
//! recovers. This is the paper's Fig. 3 story told by the simulator itself.
//!
//! ```text
//! cargo run --release --example deadlock_anatomy
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use upp::core::{Upp, UppConfig};
use upp::noc::config::NocConfig;
use upp::noc::ids::{NodeId, VnetId};
use upp::noc::network::Network;
use upp::noc::ni::ConsumePolicy;
use upp::noc::routing::ChipletRouting;
use upp::noc::scheme::{NoScheme, Scheme};
use upp::noc::sim::{RunOutcome, System};
use upp::noc::topology::ChipletSystemSpec;

fn build(scheme: Box<dyn Scheme>, seed: u64) -> System {
    let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
    let net = Network::new(
        NocConfig::default(),
        topo,
        Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        seed,
    );
    System::new(net, scheme)
}

/// Bursty inter-chiplet-heavy traffic that reliably closes dependency
/// cycles across the vertical links.
fn drive(sys: &mut System, seed: u64) -> u64 {
    let cores: Vec<NodeId> = sys
        .net()
        .topo()
        .chiplets()
        .iter()
        .flat_map(|c| c.routers.iter().copied())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sent = 0;
    for _ in 0..3_000 {
        for &src in &cores {
            if rng.gen::<f64>() >= 0.30 {
                continue;
            }
            let dest = cores[rng.gen_range(0..cores.len())];
            if dest == src {
                continue;
            }
            let vnet = VnetId(rng.gen_range(0..3u8));
            let len = if vnet.0 == 2 { 5 } else { 1 };
            if sys.send(src, dest, vnet, len).is_some() {
                sent += 1;
            }
        }
        sys.step();
    }
    sent
}

fn main() {
    let seed = 1;

    println!("== run 1: no deadlock-freedom scheme ==");
    let mut unprotected = build(Box::new(NoScheme), seed);
    let sent = drive(&mut unprotected, seed);
    let outcome = unprotected.run_until_drained(30_000);
    match outcome {
        RunOutcome::Deadlocked {
            last_progress,
            in_flight,
        } => {
            println!(
                "network WEDGED: {in_flight} packets frozen in flight, no flit has moved \
                 since cycle {last_progress} (cycle now: {})",
                unprotected.net().cycle()
            );
            // Show where upward packets are stuck (the paper's key insight:
            // every integration-induced deadlock contains one).
            let ups: Vec<NodeId> = unprotected
                .net()
                .topo()
                .interposer_routers()
                .iter()
                .copied()
                .filter(|&n| unprotected.net().topo().above(n).is_some())
                .collect();
            let mut stalled_upward = 0;
            for n in ups {
                for v in 0..3u8 {
                    stalled_upward += unprotected.net().upward_candidates(n, VnetId(v)).len();
                }
            }
            println!(
                "upward packets stalled at interposer routers: {stalled_upward} \
                 (Sec. IV-A: a deadlock always involves at least one)"
            );
            assert!(
                stalled_upward > 0,
                "the insight must hold for this deadlock"
            );
            // Show where the frozen flits sit: the wedge concentrates along
            // the dependency chains crossing the vertical links.
            let mut occ = unprotected.net().occupancy();
            occ.sort_by_key(|&(_, flits)| std::cmp::Reverse(flits));
            println!("most congested routers (node: buffered flits):");
            for (n, flits) in occ.iter().take(8) {
                let kind = if unprotected.net().topo().is_interposer(*n) {
                    "interposer"
                } else {
                    "chiplet"
                };
                println!("  {n} ({kind}): {flits}");
            }
        }
        other => println!("(this seed did not wedge: {other:?}; try another)"),
    }

    println!("\n== run 2: same traffic, same seeds, UPP enabled ==");
    let upp = Upp::new(UppConfig::default());
    let stats = upp.stats_handle();
    let mut protected = build(Box::new(upp), seed);
    let sent2 = drive(&mut protected, seed);
    // The offered traffic is identical; the *accepted* counts differ because
    // the wedged network's injection queues back up and reject packets.
    println!("accepted packets: {sent} unprotected vs {sent2} under UPP");
    let outcome = protected.run_until_drained(300_000);
    println!("outcome: {outcome:?}");
    let s = stats.lock().expect("single-threaded run");
    println!(
        "UPP detected {} upward packets, completed {} popups ({} started mid-worm), \
         sent {} stops for false positives",
        s.upward_packets, s.popups_completed, s.partial_popups, s.stops_sent
    );
    assert!(matches!(outcome, RunOutcome::Drained { .. }));
    assert_eq!(protected.net().stats().packets_ejected, sent2);
    println!(
        "all {} packets delivered — the deadlock chain was broken by upward packet popup.",
        sent2
    );
}
