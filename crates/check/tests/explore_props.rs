//! Property tests over the explorer's canonicalization and reduction
//! machinery — the parts that, if wrong, would silently corrupt an
//! "exhaustive" verdict.
//!
//! States are generated as random walks through the real transition
//! system (never synthesized field-by-field), so every tested state is
//! reachable and well-formed by construction.

use proptest::prelude::*;

use upp_check::explore::{canonicalize, encode, explore, rotate};
use upp_check::model::{ModelCfg, Mutation, State};
use upp_check::props::{check_bounded_recovery, check_no_livelock};

/// A small model configuration: 2 routers with varied knobs, or a pinned
/// cheap 3-router shape (kept tiny so the unreduced comparison runs stay
/// affordable).
fn small_cfg() -> impl Strategy<Value = ModelCfg> {
    (
        1u8..3, // queue_depth
        1u8..3, // bound
        1u8..3, // threshold
        prop_oneof![
            Just(None),
            Just(Some(Mutation::NeverExpireWatchdog)),
            Just(Some(Mutation::SkipCircuitInsert)),
            Just(Some(Mutation::DropAbsorber)),
            Just(Some(Mutation::BounceAck)),
        ],
        proptest::bool::ANY, // 3-router variant?
    )
        .prop_map(|(depth, bound, threshold, mutation, three)| {
            let mut cfg = ModelCfg::flagship(if three { 3 } else { 2 });
            if three {
                // Keep the 3-router space small: the unreduced twin of
                // every case below must stay cheap.
                cfg.bound = 1;
                cfg.queue_depth = depth.min(2);
            } else {
                cfg.queue_depth = depth;
                cfg.bound = bound;
            }
            cfg.threshold = threshold;
            cfg.mutation = mutation;
            cfg
        })
}

/// Drives a deterministic random walk through the transition system and
/// returns the final state.
fn walk(cfg: &ModelCfg, choices: &[u8]) -> State {
    let mut s = State::initial(cfg);
    for &c in choices {
        let succs = s.successors(cfg);
        if succs.is_empty() {
            break;
        }
        s = succs[c as usize % succs.len()].1.clone();
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Canonicalization is idempotent: canonicalizing a canonical
    /// representative changes nothing.
    #[test]
    fn canonicalization_is_idempotent(
        cfg in small_cfg(),
        choices in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let s = walk(&cfg, &choices);
        let (c1, b1) = canonicalize(&s, cfg.routers, true);
        let (c2, b2) = canonicalize(&c1, cfg.routers, true);
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(&b1, &b2);
        prop_assert_eq!(&encode(&c1), &b1);
    }

    /// Every rotation of a state canonicalizes to the same representative
    /// — the whole point of the orbit reduction.
    #[test]
    fn all_rotations_share_one_canonical_form(
        cfg in small_cfg(),
        choices in proptest::collection::vec(any::<u8>(), 0..40),
    ) {
        let s = walk(&cfg, &choices);
        let (_, base) = canonicalize(&s, cfg.routers, true);
        for k in 1..cfg.routers {
            let (_, rotated) = canonicalize(&rotate(&s, k, cfg.routers), cfg.routers, true);
            prop_assert_eq!(&rotated, &base, "rotation k={} diverged", k);
        }
    }

    /// The byte encoding is injective along a walk: distinct states never
    /// share an encoding (and equal states always do — it is a function).
    #[test]
    fn encoding_separates_distinct_walk_states(
        cfg in small_cfg(),
        choices in proptest::collection::vec(any::<u8>(), 0..30),
    ) {
        let mut s = State::initial(&cfg);
        let mut seen: Vec<(State, Vec<u8>)> = vec![(s.clone(), encode(&s))];
        for &c in &choices {
            let succs = s.successors(&cfg);
            if succs.is_empty() {
                break;
            }
            s = succs[c as usize % succs.len()].1.clone();
            let bytes = encode(&s);
            for (other, other_bytes) in &seen {
                prop_assert_eq!(&s == other, &bytes == other_bytes);
            }
            seen.push((s.clone(), bytes));
        }
    }

    /// Symmetry reduction must not change any verdict: the reduced and
    /// unreduced explorations agree on both properties and on whether
    /// deadlock/drain are reachable.
    #[test]
    fn reduced_and_unreduced_explorations_agree(cfg in small_cfg()) {
        let full = explore(&cfg, false, 2_000_000).expect("explores");
        let reduced = explore(&cfg, true, 2_000_000).expect("explores");
        prop_assert!(reduced.stats.states <= full.stats.states);
        prop_assert_eq!(
            check_bounded_recovery(&reduced).is_ok(),
            check_bounded_recovery(&full).is_ok(),
            "P1 verdict must survive symmetry reduction ({})",
            cfg.describe()
        );
        prop_assert_eq!(
            check_no_livelock(&reduced).is_ok(),
            check_no_livelock(&full).is_ok(),
            "P2 verdict must survive symmetry reduction ({})",
            cfg.describe()
        );
        prop_assert_eq!(
            reduced.stats.deadlock_states > 0,
            full.stats.deadlock_states > 0
        );
        prop_assert_eq!(
            reduced.stats.drained_states > 0,
            full.stats.drained_states > 0
        );
    }
}

/// Exact no-collision audit over the *entire* flagship 2-router reachable
/// set, with and without reduction: every stored state has a unique byte
/// encoding, and the 64-bit fingerprints never collided either (so even a
/// lossy hash-only frontier would have explored the same space).
#[test]
fn no_hash_collisions_across_full_two_router_space() {
    for symmetry in [false, true] {
        let cfg = ModelCfg::flagship(2);
        let ex = explore(&cfg, symmetry, 2_000_000).expect("explores");
        let mut encodings = std::collections::HashSet::new();
        let mut fingerprints = std::collections::HashSet::new();
        for s in &ex.states {
            let bytes = encode(s);
            assert!(
                fingerprints.insert(upp_check::explore::fnv1a64(&bytes)),
                "fingerprint collision in the {} space",
                if symmetry { "reduced" } else { "full" }
            );
            assert!(encodings.insert(bytes), "duplicate stored state");
        }
        assert_eq!(ex.stats.fingerprint_collisions, 0);
        assert_eq!(encodings.len(), ex.stats.states);
    }
}
