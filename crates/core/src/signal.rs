//! Protocol-signal encoding (Fig. 4 of the paper).
//!
//! `UPP_req` and `UPP_stop` share one compact format: 3 type bits, 8 bits of
//! destination router/NI, 3 one-hot VNet bits and (under wormhole flow
//! control) a 4-bit input-VC field — 18 bits total. `UPP_ack` carries 3 type
//! bits, 3 one-hot VNet bits and a 3-bit one-hot *started* field — 9 bits.
//! Both fit comfortably in the two 32-bit hardware buffers each chiplet
//! router adds; the encoding here is exact so the area model can account for
//! real widths.

use serde::{Deserialize, Serialize};
use upp_noc::ids::{NodeId, VnetId};

/// Width of the type field.
pub const TYPE_BITS: u32 = 3;
/// Width of the destination router/NI field.
pub const DEST_BITS: u32 = 8;
/// Width of the one-hot VNet field.
pub const VNET_BITS: u32 = 3;
/// Width of the wormhole input-VC field.
pub const VC_BITS: u32 = 4;
/// Width of the one-hot popup-started field (acks).
pub const START_BITS: u32 = 3;

/// Total width of a `UPP_req`/`UPP_stop` under wormhole flow control.
pub const REQ_WIDTH: u32 = TYPE_BITS + DEST_BITS + VNET_BITS + VC_BITS;
/// Total width of a `UPP_ack` under wormhole flow control.
pub const ACK_WIDTH: u32 = TYPE_BITS + VNET_BITS + START_BITS;

/// A decoded UPP protocol signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UppSignal {
    /// Reserve an ejection-queue entry at the destination NI before popup.
    Req {
        /// Destination router and NI.
        dest: NodeId,
        /// VNet of the upward packet.
        vnet: VnetId,
        /// Input VC holding the upward packet at the interposer router
        /// (wormhole support, Sec. V-B3).
        input_vc: u8,
    },
    /// The reservation succeeded; popup may start.
    Ack {
        /// VNet of the popup this ack answers.
        vnet: VnetId,
        /// One-hot per-VNet flags: popup already started inside the chiplet
        /// when the ack passed the tagged router.
        started: u8,
    },
    /// The upward packet made normal progress; recycle the reservation.
    Stop {
        /// Destination router and NI.
        dest: NodeId,
        /// VNet of the cancelled popup.
        vnet: VnetId,
    },
}

/// Errors raised when a signal cannot be encoded or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignalCodecError {
    /// Node id exceeds the 8-bit destination field.
    DestTooLarge(NodeId),
    /// VNet index exceeds the 3-bit one-hot field.
    VnetTooLarge(VnetId),
    /// Input VC exceeds the 4-bit field.
    VcTooLarge(u8),
    /// Unknown type tag in an encoded word.
    BadType(u32),
    /// One-hot field holds zero or multiple bits.
    BadOneHot(u32),
}

impl std::fmt::Display for SignalCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DestTooLarge(n) => write!(f, "destination {n} exceeds the 8-bit field"),
            Self::VnetTooLarge(v) => write!(f, "vnet {v} exceeds the 3-bit one-hot field"),
            Self::VcTooLarge(c) => write!(f, "input VC {c} exceeds the 4-bit field"),
            Self::BadType(t) => write!(f, "unknown signal type tag {t}"),
            Self::BadOneHot(x) => write!(f, "field {x:#b} is not one-hot"),
        }
    }
}

impl std::error::Error for SignalCodecError {}

const TYPE_REQ: u32 = 0b001;
const TYPE_ACK: u32 = 0b010;
const TYPE_STOP: u32 = 0b011;

impl UppSignal {
    /// The signal's VNet.
    pub fn vnet(&self) -> VnetId {
        match *self {
            UppSignal::Req { vnet, .. }
            | UppSignal::Ack { vnet, .. }
            | UppSignal::Stop { vnet, .. } => vnet,
        }
    }

    /// Encodes to the compact wire format of Fig. 4.
    ///
    /// Layout (LSB first): `type[3] | dest[8] | vnet_onehot[3] | vc[4]` for
    /// req/stop, `type[3] | vnet_onehot[3] | started[3]` for acks.
    ///
    /// # Errors
    ///
    /// Returns [`SignalCodecError`] when a field does not fit its width.
    pub fn encode(&self) -> Result<u32, SignalCodecError> {
        match *self {
            UppSignal::Req {
                dest,
                vnet,
                input_vc,
            } => {
                let d = check_dest(dest)?;
                let v = onehot(vnet)?;
                if input_vc >= (1 << VC_BITS) {
                    return Err(SignalCodecError::VcTooLarge(input_vc));
                }
                Ok(TYPE_REQ
                    | (d << TYPE_BITS)
                    | (v << (TYPE_BITS + DEST_BITS))
                    | ((input_vc as u32) << (TYPE_BITS + DEST_BITS + VNET_BITS)))
            }
            UppSignal::Stop { dest, vnet } => {
                let d = check_dest(dest)?;
                let v = onehot(vnet)?;
                Ok(TYPE_STOP | (d << TYPE_BITS) | (v << (TYPE_BITS + DEST_BITS)))
            }
            UppSignal::Ack { vnet, started } => {
                let v = onehot(vnet)?;
                if started >= (1 << START_BITS) {
                    return Err(SignalCodecError::BadOneHot(started as u32));
                }
                Ok(TYPE_ACK | (v << TYPE_BITS) | ((started as u32) << (TYPE_BITS + VNET_BITS)))
            }
        }
    }

    /// Decodes the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`SignalCodecError`] on a malformed word.
    pub fn decode(bits: u32) -> Result<Self, SignalCodecError> {
        let ty = bits & ((1 << TYPE_BITS) - 1);
        match ty {
            TYPE_REQ => {
                let dest = (bits >> TYPE_BITS) & ((1 << DEST_BITS) - 1);
                let v = (bits >> (TYPE_BITS + DEST_BITS)) & ((1 << VNET_BITS) - 1);
                let vc = (bits >> (TYPE_BITS + DEST_BITS + VNET_BITS)) & ((1 << VC_BITS) - 1);
                Ok(UppSignal::Req {
                    dest: NodeId(dest),
                    vnet: from_onehot(v)?,
                    input_vc: vc as u8,
                })
            }
            TYPE_STOP => {
                let dest = (bits >> TYPE_BITS) & ((1 << DEST_BITS) - 1);
                let v = (bits >> (TYPE_BITS + DEST_BITS)) & ((1 << VNET_BITS) - 1);
                Ok(UppSignal::Stop {
                    dest: NodeId(dest),
                    vnet: from_onehot(v)?,
                })
            }
            TYPE_ACK => {
                let v = (bits >> TYPE_BITS) & ((1 << VNET_BITS) - 1);
                let started = (bits >> (TYPE_BITS + VNET_BITS)) & ((1 << START_BITS) - 1);
                Ok(UppSignal::Ack {
                    vnet: from_onehot(v)?,
                    started: started as u8,
                })
            }
            other => Err(SignalCodecError::BadType(other)),
        }
    }
}

fn check_dest(dest: NodeId) -> Result<u32, SignalCodecError> {
    if dest.0 >= (1 << DEST_BITS) {
        return Err(SignalCodecError::DestTooLarge(dest));
    }
    Ok(dest.0)
}

fn onehot(vnet: VnetId) -> Result<u32, SignalCodecError> {
    if u32::from(vnet.0) >= VNET_BITS {
        return Err(SignalCodecError::VnetTooLarge(vnet));
    }
    Ok(1 << vnet.0)
}

fn from_onehot(bits: u32) -> Result<VnetId, SignalCodecError> {
    if bits.count_ones() != 1 {
        return Err(SignalCodecError::BadOneHot(bits));
    }
    Ok(VnetId(bits.trailing_zeros() as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_fig4() {
        assert_eq!(REQ_WIDTH, 18, "req/stop: 3 + 8 + 3 + 4 bits");
        assert_eq!(ACK_WIDTH, 9, "ack: 3 + 3 + 3 bits");
        let fits = REQ_WIDTH <= 32 && ACK_WIDTH <= 32;
        assert!(fits, "fit the 32-bit buffers");
    }

    #[test]
    fn roundtrip_all_signal_kinds() {
        let signals = [
            UppSignal::Req {
                dest: NodeId(77),
                vnet: VnetId(0),
                input_vc: 11,
            },
            UppSignal::Req {
                dest: NodeId(0),
                vnet: VnetId(2),
                input_vc: 0,
            },
            UppSignal::Stop {
                dest: NodeId(255),
                vnet: VnetId(1),
            },
            UppSignal::Ack {
                vnet: VnetId(1),
                started: 0b010,
            },
            UppSignal::Ack {
                vnet: VnetId(0),
                started: 0,
            },
        ];
        for s in signals {
            let bits = s.encode().unwrap();
            assert_eq!(UppSignal::decode(bits).unwrap(), s, "roundtrip {s:?}");
        }
    }

    #[test]
    fn encoded_words_respect_field_widths() {
        let req = UppSignal::Req {
            dest: NodeId(255),
            vnet: VnetId(2),
            input_vc: 15,
        }
        .encode()
        .unwrap();
        assert!(
            req < (1 << REQ_WIDTH),
            "req word uses at most {REQ_WIDTH} bits"
        );
        let ack = UppSignal::Ack {
            vnet: VnetId(2),
            started: 0b111,
        }
        .encode()
        .unwrap();
        assert!(
            ack < (1 << ACK_WIDTH),
            "ack word uses at most {ACK_WIDTH} bits"
        );
    }

    #[test]
    fn oversized_fields_are_rejected() {
        assert!(matches!(
            UppSignal::Req {
                dest: NodeId(256),
                vnet: VnetId(0),
                input_vc: 0
            }
            .encode(),
            Err(SignalCodecError::DestTooLarge(_))
        ));
        assert!(matches!(
            UppSignal::Req {
                dest: NodeId(1),
                vnet: VnetId(3),
                input_vc: 0
            }
            .encode(),
            Err(SignalCodecError::VnetTooLarge(_))
        ));
        assert!(matches!(
            UppSignal::Req {
                dest: NodeId(1),
                vnet: VnetId(0),
                input_vc: 16
            }
            .encode(),
            Err(SignalCodecError::VcTooLarge(16))
        ));
    }

    #[test]
    fn malformed_words_are_rejected() {
        assert!(matches!(
            UppSignal::decode(0),
            Err(SignalCodecError::BadType(0))
        ));
        // Type=Req but zero vnet one-hot bits.
        assert!(matches!(
            UppSignal::decode(TYPE_REQ),
            Err(SignalCodecError::BadOneHot(0))
        ));
        // Two vnet bits set.
        let bad = TYPE_REQ | (0b011 << (TYPE_BITS + DEST_BITS));
        assert!(matches!(
            UppSignal::decode(bad),
            Err(SignalCodecError::BadOneHot(_))
        ));
    }

    #[test]
    fn errors_are_displayable() {
        let e = UppSignal::Req {
            dest: NodeId(999),
            vnet: VnetId(0),
            input_vc: 0,
        }
        .encode()
        .unwrap_err();
        assert!(e.to_string().contains("8-bit"));
    }
}
