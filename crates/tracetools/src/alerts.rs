//! Analysis over health-monitor alert streams (`upp_noc::watch`).
//!
//! Input is the `upp-alerts/v1` JSONL shape written by
//! `simulate --watch-out` (and embedded per-point by `repro --watch-out`):
//! a header line marked `"upp_alerts": 1` followed by one alert object per
//! line. Files carrying a different schema tag are rejected up front.
//!
//! The renderers mirror the `obs` module: a human table
//! ([`report_text`]), a flat CSV timeline ([`timeline_csv`]) and an SVG
//! lane chart ([`lanes_svg`]) with one horizontal lane per detector and
//! one mark per hysteresis transition. All output is deterministic —
//! fixed iteration order, integer-only values.

use std::fmt::Write as _;

use serde_json::Value;
use upp_noc::watch::ALERTS_SCHEMA;

/// One parsed alert line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertRecord {
    /// Detector identifier (`throughput_collapse`, ...).
    pub detector: String,
    /// Transition: `raise`, `escalate` or `clear`.
    pub event: String,
    /// Severity after the transition: `info`, `warning` or `critical`.
    pub severity: String,
    /// The metric the detector triggers on.
    pub metric: String,
    /// Metric value at the emitting epoch.
    pub value: u64,
    /// Threshold the value was compared against.
    pub threshold: u64,
    /// First epoch cycle of the triggering span.
    pub from_cycle: u64,
    /// Cycle of the epoch that emitted the alert.
    pub at_cycle: u64,
}

impl AlertRecord {
    /// Parses one alert JSONL line (no header); `None` when the line is
    /// not a complete alert object. Used by `upp-trace live` to render
    /// lines as they are appended.
    pub fn from_json_line(line: &str) -> Option<Self> {
        Self::from_value(&serde_json::from_str(line).ok()?)
    }

    fn from_value(v: &Value) -> Option<Self> {
        Some(Self {
            detector: v.get("detector")?.as_str()?.to_string(),
            event: v.get("event")?.as_str()?.to_string(),
            severity: v.get("severity")?.as_str()?.to_string(),
            metric: v.get("metric")?.as_str()?.to_string(),
            value: v.get("value")?.as_u64()?,
            threshold: v.get("threshold")?.as_u64()?,
            from_cycle: v.get("from_cycle")?.as_u64()?,
            at_cycle: v.get("at_cycle")?.as_u64()?,
        })
    }

    /// One fixed-width human line (shared by `upp-trace alerts` and
    /// `upp-trace live`).
    pub fn render_line(&self) -> String {
        format!(
            "{:>10}  {:<8} {:<9} {:<21} {}={} (threshold {}, since cycle {})",
            self.at_cycle,
            self.event,
            self.severity,
            self.detector,
            self.metric,
            self.value,
            self.threshold,
            self.from_cycle
        )
    }
}

/// A parsed `upp-alerts/v1` stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertsReport {
    /// Watch epoch length recorded in the header.
    pub every: u64,
    /// Alert records, in stream (emission) order.
    pub alerts: Vec<AlertRecord>,
}

/// True when `v` is an `upp-alerts/v1` stream header.
pub fn is_alerts_header(v: &Value) -> bool {
    matches!(v.get("upp_alerts").and_then(Value::as_u64), Some(1))
}

impl AlertsReport {
    /// Parses a full alert JSONL document (header line plus alert lines).
    ///
    /// # Errors
    ///
    /// Rejects missing/foreign headers, schema-tag mismatches and
    /// malformed alert lines, naming the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or("empty input")?;
        let header: Value = serde_json::from_str(header_line)
            .map_err(|e| format!("header line is not JSON: {e}"))?;
        if !is_alerts_header(&header) {
            return Err("not an upp-alerts stream (no \"upp_alerts\" header)".into());
        }
        match header.get("schema").and_then(Value::as_str) {
            Some(s) if s == ALERTS_SCHEMA => {}
            other => {
                return Err(format!(
                    "alert schema mismatch: file has {other:?}, reader expects {ALERTS_SCHEMA:?}"
                ))
            }
        }
        let every = header
            .get("every")
            .and_then(Value::as_u64)
            .ok_or("header lacks \"every\"")?;
        let mut alerts = Vec::new();
        for (i, line) in lines.enumerate() {
            let v: Value = serde_json::from_str(line)
                .map_err(|e| format!("alert line {}: not JSON: {e}", i + 2))?;
            // Multi-point streams (`repro --watch-out`) interleave
            // `{"upp_alerts_point":1,...}` context lines between groups;
            // they are separators, not alerts.
            if v.get("upp_alerts_point").is_some() {
                continue;
            }
            let rec = AlertRecord::from_value(&v)
                .ok_or_else(|| format!("alert line {}: missing fields", i + 2))?;
            alerts.push(rec);
        }
        Ok(Self { every, alerts })
    }
}

/// Human report: stream parameters, per-detector counts, then the
/// transition table in emission order.
pub fn report_text(r: &AlertsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "upp-alerts stream: {} transitions, epoch {} cycles",
        r.alerts.len(),
        r.every
    );
    // Per-detector totals in the watch module's stable reporting order,
    // skipping detectors that never fired.
    for d in upp_noc::watch::Detector::ALL {
        let raised = r
            .alerts
            .iter()
            .filter(|a| a.detector == d.name() && a.event != "clear")
            .count();
        let cleared = r
            .alerts
            .iter()
            .filter(|a| a.detector == d.name() && a.event == "clear")
            .count();
        if raised + cleared > 0 {
            let _ = writeln!(out, "  {:<21} {raised} raised, {cleared} cleared", d.name());
        }
    }
    if r.alerts.is_empty() {
        let _ = writeln!(out, "  (healthy: no alerts)");
        return out;
    }
    let _ = writeln!(
        out,
        "{:>10}  {:<8} {:<9} {:<21} trigger",
        "cycle", "event", "severity", "detector"
    );
    for a in &r.alerts {
        let _ = writeln!(out, "{}", a.render_line());
    }
    out
}

/// Flat CSV timeline: one row per transition, emission order.
pub fn timeline_csv(r: &AlertsReport) -> String {
    let mut out =
        String::from("at_cycle,from_cycle,detector,event,severity,metric,value,threshold\n");
    for a in &r.alerts {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            a.at_cycle,
            a.from_cycle,
            a.detector,
            a.event,
            a.severity,
            a.metric,
            a.value,
            a.threshold
        );
    }
    out
}

fn severity_color(severity: &str) -> &'static str {
    match severity {
        "critical" => "#c0392b",
        "warning" => "#e67e22",
        _ => "#27ae60",
    }
}

/// SVG lane chart: one horizontal lane per detector (in stable order,
/// only detectors that fired), a span bar from `from_cycle` to `at_cycle`
/// per transition and a severity-colored marker at the transition cycle.
pub fn lanes_svg(r: &AlertsReport) -> String {
    let lanes: Vec<&'static str> = upp_noc::watch::Detector::ALL
        .iter()
        .map(|d| d.name())
        .filter(|n| r.alerts.iter().any(|a| &a.detector == n))
        .collect();
    let max_cycle = r
        .alerts
        .iter()
        .map(|a| a.at_cycle)
        .max()
        .unwrap_or(r.every)
        .max(1);
    let (left, lane_h, plot_w) = (170.0_f64, 26.0_f64, 640.0_f64);
    let width = left + plot_w + 20.0;
    let height = 40.0 + lanes.len().max(1) as f64 * lane_h + 20.0;
    let x = |c: u64| left + c as f64 / max_cycle as f64 * plot_w;
    let mut s = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.0} {height:.0}\" font-family=\"monospace\" font-size=\"11\">\n\
         <text x=\"8\" y=\"16\">upp-alerts timeline (0..{max_cycle} cycles, epoch {})</text>\n",
        r.every
    );
    for (i, name) in lanes.iter().enumerate() {
        let y = 40.0 + i as f64 * lane_h;
        let _ = writeln!(
            s,
            "<text x=\"8\" y=\"{:.1}\">{name}</text>\n\
             <line x1=\"{left:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" \
             stroke=\"#dddddd\" stroke-width=\"1\"/>",
            y + lane_h * 0.65,
            y + lane_h * 0.5,
            left + plot_w,
            y + lane_h * 0.5
        );
        for a in r.alerts.iter().filter(|a| a.detector == *name) {
            let (x0, x1) = (x(a.from_cycle), x(a.at_cycle));
            let yc = y + lane_h * 0.5;
            let color = severity_color(&a.severity);
            let _ = writeln!(
                s,
                "<line x1=\"{x0:.1}\" y1=\"{yc:.1}\" x2=\"{x1:.1}\" y2=\"{yc:.1}\" \
                 stroke=\"{color}\" stroke-width=\"4\" stroke-opacity=\"0.45\"/>\n\
                 <circle cx=\"{x1:.1}\" cy=\"{yc:.1}\" r=\"4\" fill=\"{color}\">\
                 <title>{} {} at {} ({}={} threshold {})</title></circle>",
                a.detector, a.event, a.at_cycle, a.metric, a.value, a.threshold
            );
        }
    }
    if lanes.is_empty() {
        let _ = writeln!(
            s,
            "<text x=\"{left:.1}\" y=\"52\">healthy: no alerts</text>"
        );
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut s = upp_noc::watch::alerts_header_json(100);
        s.push('\n');
        s.push_str(
            "{\"detector\":\"throughput_collapse\",\"event\":\"raise\",\
             \"severity\":\"warning\",\"metric\":\"flits_per_epoch\",\"value\":6,\
             \"threshold\":103,\"from_cycle\":900,\"at_cycle\":1000}\n\
             {\"detector\":\"throughput_collapse\",\"event\":\"escalate\",\
             \"severity\":\"critical\",\"metric\":\"flits_per_epoch\",\"value\":2,\
             \"threshold\":63,\"from_cycle\":900,\"at_cycle\":1200}\n",
        );
        s
    }

    #[test]
    fn parses_and_renders_a_stream() {
        let r = AlertsReport::parse(&sample()).unwrap();
        assert_eq!(r.every, 100);
        assert_eq!(r.alerts.len(), 2);
        assert_eq!(r.alerts[1].event, "escalate");
        let text = report_text(&r);
        assert!(text.contains("2 transitions"), "{text}");
        assert!(text.contains("throughput_collapse"), "{text}");
        let csv = timeline_csv(&r);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(2).unwrap().starts_with("1200,900,"));
        let svg = lanes_svg(&r);
        assert!(svg.contains("<svg"), "{svg}");
        assert!(svg.contains("#c0392b"), "critical marker color: {svg}");
    }

    #[test]
    fn rejects_foreign_and_malformed_input() {
        assert!(AlertsReport::parse("").is_err());
        assert!(AlertsReport::parse("{\"upp_obs\":1}\n").is_err());
        let wrong_schema = "{\"upp_alerts\":1,\"schema\":\"upp-alerts/v9\",\"every\":10}\n";
        let err = AlertsReport::parse(wrong_schema).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        let bad_line = format!(
            "{}\n{{\"detector\":1}}\n",
            upp_noc::watch::alerts_header_json(5)
        );
        let err = AlertsReport::parse(&bad_line).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn empty_stream_reports_healthy() {
        let header = upp_noc::watch::alerts_header_json(200) + "\n";
        let r = AlertsReport::parse(&header).unwrap();
        assert!(r.alerts.is_empty());
        assert!(report_text(&r).contains("healthy"));
        assert!(lanes_svg(&r).contains("healthy"));
    }
}
