//! DSENT-substitute energy model (Fig. 15).
//!
//! The paper feeds gem5 runtime statistics into DSENT at 22 nm and finds the
//! network energy dominated by static (leakage + clock) power, so energy
//! tracks runtime almost linearly. We reproduce that structure: per-event
//! dynamic energies for buffers, crossbars, arbiters and links, plus
//! per-cycle static power proportional to the amount of buffering — with
//! constants in the magnitude range DSENT reports for a 128-bit, 1 GHz,
//! 22 nm router.

use serde::{Deserialize, Serialize};
use upp_noc::config::NocConfig;
use upp_noc::stats::NetStats;

/// Per-event and per-cycle energy constants (picojoules / microwatts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Dynamic energy of one buffer write, pJ/bit.
    pub buf_write_pj_per_bit: f64,
    /// Dynamic energy of one buffer read, pJ/bit.
    pub buf_read_pj_per_bit: f64,
    /// Dynamic energy of one crossbar traversal, pJ/bit.
    pub xbar_pj_per_bit: f64,
    /// Dynamic energy of one allocation/arbitration event, pJ.
    pub arbiter_pj: f64,
    /// Dynamic energy of one link traversal, pJ/bit.
    pub link_pj_per_bit: f64,
    /// Static (leakage) power per buffered bit, µW.
    pub leak_uw_per_buffer_bit: f64,
    /// Static power of one router's control + clock tree, µW.
    pub leak_uw_per_router_fixed: f64,
    /// Static power per link, µW.
    pub leak_uw_per_link: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            buf_write_pj_per_bit: 0.020,
            buf_read_pj_per_bit: 0.015,
            xbar_pj_per_bit: 0.025,
            arbiter_pj: 0.3,
            link_pj_per_bit: 0.030,
            leak_uw_per_buffer_bit: 0.9,
            leak_uw_per_router_fixed: 1_500.0,
            leak_uw_per_link: 120.0,
        }
    }
}

/// An energy breakdown for one run, in picojoules (1 GHz: 1 cycle = 1 ns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Dynamic energy, pJ.
    pub dynamic_pj: f64,
    /// Static energy, pJ.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.static_pj
    }

    /// Fraction of the total that is static.
    pub fn static_share(&self) -> f64 {
        if self.total_pj() == 0.0 {
            0.0
        } else {
            self.static_pj / self.total_pj()
        }
    }
}

/// Per-router buffering in bits under `cfg` (mesh ports only; matches the
/// area model's accounting).
pub fn buffer_bits_per_router(cfg: &NocConfig, ports: usize) -> f64 {
    (ports * cfg.vcs_per_port() * cfg.vc_buffer_depth * cfg.flit_width_bits) as f64
}

impl EnergyModel {
    /// Computes the network energy of a run from its statistics.
    ///
    /// `routers` and `links` describe the system size; `cycles` is the run
    /// length. Every flit hop is one buffer write + read + crossbar + link
    /// traversal + arbitration; bypass hops skip the buffer energy (UPP's
    /// upward flits bypass buffers); control hops are one signal-width
    /// (32-bit) traversal.
    pub fn energy(
        &self,
        cfg: &NocConfig,
        stats: &NetStats,
        routers: usize,
        links: usize,
        cycles: u64,
    ) -> EnergyBreakdown {
        let w = cfg.flit_width_bits as f64;
        let per_hop = w
            * (self.buf_write_pj_per_bit
                + self.buf_read_pj_per_bit
                + self.xbar_pj_per_bit
                + self.link_pj_per_bit)
            + self.arbiter_pj;
        let per_bypass = w * (self.xbar_pj_per_bit + self.link_pj_per_bit);
        let per_control = 32.0 * (self.xbar_pj_per_bit + self.link_pj_per_bit) + self.arbiter_pj;
        let dynamic_pj = stats.flit_hops as f64 * per_hop
            + stats.bypass_hops as f64 * per_bypass
            + stats.control_hops as f64 * per_control
            + stats.flits_injected as f64 * w * self.buf_write_pj_per_bit
            + stats.flits_ejected as f64 * w * self.buf_read_pj_per_bit;

        let leak_per_router_uw = self.leak_uw_per_router_fixed
            + buffer_bits_per_router(cfg, 5) * self.leak_uw_per_buffer_bit;
        let total_uw = routers as f64 * leak_per_router_uw + links as f64 * self.leak_uw_per_link;
        // µW * ns = femtojoules; convert to pJ.
        let static_pj = total_uw * cycles as f64 * 1e-3;
        EnergyBreakdown {
            dynamic_pj,
            static_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(hops: u64, cycles: u64) -> (NetStats, u64) {
        let mut s = NetStats::new(3);
        s.flit_hops = hops;
        s.flits_injected = hops / 6;
        s.flits_ejected = hops / 6;
        (s, cycles)
    }

    #[test]
    fn static_dominates_at_realistic_load() {
        // The paper: "the network power consumption is dominated by static
        // power" for full-system runs. A run at ~0.05 flits/node/cycle over
        // 80 routers should be >80% static.
        let cfg = NocConfig::default();
        let m = EnergyModel::default();
        let cycles = 100_000;
        let (s, c) = stats_with(80 * cycles / 50 * 6, cycles); // ~0.02 flits/node, ~6 hops
        let e = m.energy(&cfg, &s, 80, 300, c);
        assert!(
            e.static_share() > 0.8,
            "static share {} should dominate",
            e.static_share()
        );
        assert!(e.static_share() < 0.995, "dynamic must still be visible");
    }

    #[test]
    fn energy_scales_with_runtime() {
        let cfg = NocConfig::default();
        let m = EnergyModel::default();
        let (s, _) = stats_with(1_000_000, 0);
        let short = m.energy(&cfg, &s, 80, 300, 50_000);
        let long = m.energy(&cfg, &s, 80, 300, 100_000);
        assert!(long.total_pj() > short.total_pj());
        assert!((long.static_pj / short.static_pj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bypass_hops_cost_less_than_buffered_hops() {
        let cfg = NocConfig::default();
        let m = EnergyModel::default();
        let mut a = NetStats::new(3);
        a.flit_hops = 1000;
        let mut b = NetStats::new(3);
        b.bypass_hops = 1000;
        let ea = m.energy(&cfg, &a, 80, 300, 1);
        let eb = m.energy(&cfg, &b, 80, 300, 1);
        assert!(eb.dynamic_pj < ea.dynamic_pj, "bypass skips buffer energy");
    }

    #[test]
    fn more_vcs_leak_more() {
        let m = EnergyModel::default();
        let cfg1 = NocConfig::default();
        let cfg4 = NocConfig::default().with_vcs_per_vnet(4);
        let s = NetStats::new(3);
        let e1 = m.energy(&cfg1, &s, 80, 300, 1_000);
        let e4 = m.energy(&cfg4, &s, 80, 300, 1_000);
        assert!(
            e4.static_pj > 2.0 * e1.static_pj,
            "4 VCs quadruple the buffer leakage"
        );
    }
}
