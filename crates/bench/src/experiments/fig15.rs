//! Fig. 15: normalized network energy of the full-system runs, computed by
//! the DSENT-substitute model over the Fig. 8 statistics.

use super::fig8;
use crate::report::{f3, ExperimentResult, MarkdownTable};
use serde::Serialize;
use upp_noc::config::NocConfig;
use upp_noc::stats::NetStats;
use upp_workloads::energy::EnergyModel;

/// One benchmark's normalized energies.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// VCs per VNet.
    pub vcs: usize,
    /// Energy normalized to composable.
    pub composable: f64,
    /// Remote control energy normalized to composable.
    pub remote: f64,
    /// UPP energy normalized to composable.
    pub upp: f64,
    /// Static share of UPP's energy (paper: static dominates).
    pub upp_static_share: f64,
}

fn stats_of(run: &fig8::Fig8Run) -> NetStats {
    let mut s = NetStats::new(3);
    s.flit_hops = run.flit_hops;
    s.bypass_hops = run.bypass_hops;
    s.control_hops = run.control_hops;
    s.flits_injected = run.flits_injected;
    s.flits_ejected = run.flits;
    s
}

/// Collects normalized energies from the Fig. 8 runs.
pub fn collect(quick: bool) -> Vec<Row> {
    let d = fig8::data(quick);
    let model = EnergyModel::default();
    let mut rows = Vec::new();
    for vcs in [1usize, 4] {
        let cfg = NocConfig::default().with_vcs_per_vnet(vcs);
        let energy_of = |scheme: &str, bench: &str| {
            d.runs
                .iter()
                .find(|r| r.scheme == scheme && r.vcs == vcs && r.benchmark == bench)
                .map(|r| model.energy(&cfg, &stats_of(r), d.routers, d.links, r.cycles))
        };
        let mut benches: Vec<String> = d
            .runs
            .iter()
            .filter(|r| r.vcs == vcs)
            .map(|r| r.benchmark.clone())
            .collect();
        benches.sort();
        benches.dedup();
        for b in &benches {
            let Some(comp) = energy_of("composable", b) else {
                continue;
            };
            let Some(rem) = energy_of("remote-control", b) else {
                continue;
            };
            let Some(upp) = energy_of("UPP", b) else {
                continue;
            };
            rows.push(Row {
                benchmark: b.clone(),
                vcs,
                composable: 1.0,
                remote: rem.total_pj() / comp.total_pj(),
                upp: upp.total_pj() / comp.total_pj(),
                upp_static_share: upp.static_share(),
            });
        }
    }
    rows
}

/// Runs Fig. 15 and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let rows = collect(quick);
    let mut out = String::new();
    out.push_str(
        "### Fig. 15 — normalized network energy (DSENT-substitute, normalized to composable)\n\n",
    );
    for vcs in [1usize, 4] {
        out.push_str(&format!(
            "\n**({}) {} VC(s) per VNet**\n\n",
            if vcs == 1 { "a" } else { "b" },
            vcs
        ));
        let mut t = MarkdownTable::new([
            "benchmark",
            "composable",
            "remote-control",
            "UPP",
            "UPP static share",
        ]);
        let mut geo = (0.0f64, 0usize);
        for r in rows.iter().filter(|r| r.vcs == vcs) {
            t.row([
                r.benchmark.clone(),
                f3(r.composable),
                f3(r.remote),
                f3(r.upp),
                format!("{:.0}%", r.upp_static_share * 100.0),
            ]);
            geo.0 += r.upp.ln();
            geo.1 += 1;
        }
        out.push_str(&t.render());
        if geo.1 > 0 {
            out.push_str(&format!(
                "\nUPP geomean: {} (paper: 0.913 at 1 VC, 0.953 at 4 VCs)\n",
                f3((geo.0 / geo.1 as f64).exp())
            ));
        }
    }
    out.push_str(
        "\nPaper: energy is static-dominated, so it tracks runtime and UPP consumes the least.\n",
    );
    ExperimentResult::new("fig15", "Fig. 15: normalized energy", out, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_tracks_runtime_and_upp_wins_on_average() {
        let rows = collect(true);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.upp_static_share > 0.5,
                "{}: static must dominate",
                r.benchmark
            );
            assert!(r.upp > 0.0 && r.remote > 0.0);
        }
        let geo: f64 = rows.iter().map(|r| r.upp.ln()).sum::<f64>() / rows.len() as f64;
        assert!(
            geo.exp() < 1.05,
            "UPP geomean energy must not exceed composable by >5%"
        );
    }
}
