//! Algebraic properties of the telemetry registry's epoch snapshots.
//!
//! Aggregation across epochs (and, later, across shards) folds snapshots
//! with [`ObsSnapshot::merge`]; for the fold to be safe to reorder and
//! regroup, snapshots over one registry layout must form a commutative
//! monoid. These properties also pin the exactness claim: cutting a run
//! into arbitrary epochs and merging them back reproduces the whole-run
//! snapshot bit-for-bit.

use proptest::prelude::*;
use upp_noc::obs::{ObsHistogram, ObsRegistry, ObsSnapshot};

/// Event stream applied to a registry: every op targets one of a fixed
/// small set of metrics so layouts always match.
#[derive(Debug, Clone)]
enum Op {
    Inc(u8, u64),
    GaugeSet(u8, u64),
    GaugeAdd(u8, u64),
    GaugeSub(u8, u64),
    Record(u8, u64),
}

const COUNTERS: usize = 3;
const GAUGES: usize = 2;
const HISTS: usize = 2;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..COUNTERS as u8, 0u64..1_000).prop_map(|(i, n)| Op::Inc(i, n)),
        (0..GAUGES as u8, 0u64..1_000).prop_map(|(i, v)| Op::GaugeSet(i, v)),
        (0..GAUGES as u8, 0u64..100).prop_map(|(i, n)| Op::GaugeAdd(i, n)),
        (0..GAUGES as u8, 0u64..100).prop_map(|(i, n)| Op::GaugeSub(i, n)),
        (0..HISTS as u8, 0u64..1 << 40).prop_map(|(i, v)| Op::Record(i, v)),
    ]
}

/// A registry with the fixed layout and every op applied in order.
fn registry() -> ObsRegistry {
    let mut r = ObsRegistry::default();
    r.enable();
    for i in 0..COUNTERS {
        r.counter(&format!("c{i}"));
    }
    for i in 0..GAUGES {
        r.gauge(&format!("g{i}"));
    }
    for i in 0..HISTS {
        r.hist(&format!("h{i}"));
    }
    r
}

fn apply(r: &mut ObsRegistry, op: &Op) {
    match *op {
        Op::Inc(i, n) => {
            let id = r.counter(&format!("c{i}"));
            r.add(id, n);
        }
        Op::GaugeSet(i, v) => {
            let id = r.gauge(&format!("g{i}"));
            r.gauge_set(id, v);
        }
        Op::GaugeAdd(i, n) => {
            let id = r.gauge(&format!("g{i}"));
            r.gauge_add(id, n);
        }
        Op::GaugeSub(i, n) => {
            let id = r.gauge(&format!("g{i}"));
            r.gauge_sub(id, n);
        }
        Op::Record(i, v) => {
            let id = r.hist(&format!("h{i}"));
            r.record(id, v);
        }
    }
}

/// A snapshot cut after applying `ops`, with the epoch ending at `cycle`.
fn snapshot(ops: &[Op], cycle: u64) -> ObsSnapshot {
    let mut r = registry();
    for op in ops {
        apply(&mut r, op);
    }
    r.take_epoch(cycle)
}

fn merged(a: &ObsSnapshot, b: &ObsSnapshot) -> ObsSnapshot {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    /// `merge` is associative: (a + b) + c == a + (b + c).
    #[test]
    fn merge_is_associative(
        a in (proptest::collection::vec(op_strategy(), 0..20), 0u64..500),
        b in (proptest::collection::vec(op_strategy(), 0..20), 0u64..500),
        c in (proptest::collection::vec(op_strategy(), 0..20), 0u64..500),
    ) {
        let (sa, sb, sc) = (snapshot(&a.0, a.1), snapshot(&b.0, b.1), snapshot(&c.0, c.1));
        let left = merged(&merged(&sa, &sb), &sc);
        let right = merged(&sa, &merged(&sb, &sc));
        prop_assert_eq!(left, right);
    }

    /// `merge` is commutative: a + b == b + a (the gauge value join is a
    /// lexicographic max over `(end_cycle, value)`, so even equal-cycle
    /// snapshots resolve the same way from both sides).
    #[test]
    fn merge_is_commutative(
        a in (proptest::collection::vec(op_strategy(), 0..20), 0u64..500),
        b in (proptest::collection::vec(op_strategy(), 0..20), 0u64..500),
    ) {
        let (sa, sb) = (snapshot(&a.0, a.1), snapshot(&b.0, b.1));
        prop_assert_eq!(merged(&sa, &sb), merged(&sb, &sa));
    }

    /// Folding any permutation of a snapshot set yields the same total.
    #[test]
    fn fold_is_order_independent(
        snaps in proptest::collection::vec(
            (proptest::collection::vec(op_strategy(), 0..12), 0u64..500),
            1..6,
        ),
        seed in 0u64..u64::MAX,
    ) {
        let snaps: Vec<ObsSnapshot> =
            snaps.iter().map(|(ops, cy)| snapshot(ops, *cy)).collect();
        // A deterministic permutation derived from `seed` (Fisher–Yates
        // with a multiplicative step).
        let mut perm: Vec<usize> = (0..snaps.len()).collect();
        let mut s = seed;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let fold = |order: &[usize]| {
            let mut acc = snaps[order[0]].clone();
            for &i in &order[1..] {
                acc.merge(&snaps[i]);
            }
            acc
        };
        let natural: Vec<usize> = (0..snaps.len()).collect();
        prop_assert_eq!(fold(&natural), fold(&perm));
    }

    /// Exactness across epoch cuts: slicing one event stream into epochs
    /// at an arbitrary point and merging the two snapshots reproduces the
    /// single whole-run snapshot — counters, histogram buckets, gauge
    /// high-waters and final gauge values all agree.
    #[test]
    fn epoch_cuts_lose_nothing(
        ops in proptest::collection::vec(op_strategy(), 0..40),
        cut_pct in 0u64..101,
    ) {
        let cut = ops.len() * cut_pct as usize / 100;
        let mut split = registry();
        for op in &ops[..cut] {
            apply(&mut split, op);
        }
        let mut total = split.take_epoch(100);
        for op in &ops[cut..] {
            apply(&mut split, op);
        }
        total.merge(&split.take_epoch(200));

        let whole = snapshot(&ops, 200);
        prop_assert_eq!(total, whole);
    }
}

/// The merge identity: an empty epoch over the same layout.
#[test]
fn empty_snapshot_is_identity() {
    let ops = vec![Op::Inc(0, 7), Op::GaugeSet(1, 9), Op::Record(0, 33)];
    let s = snapshot(&ops, 50);
    let zero = snapshot(&[], 0);
    let mut left = zero.clone();
    left.merge(&s);
    assert_eq!(left, s);
    let mut right = s.clone();
    right.merge(&zero);
    assert_eq!(right, s);
}

/// Histogram merge matches recording the union of the sample streams.
#[test]
fn histogram_merge_equals_union() {
    let mut a = ObsHistogram::new();
    let mut b = ObsHistogram::new();
    let mut u = ObsHistogram::new();
    for v in [0, 1, 31, 32, 33, 1000, 1 << 20] {
        a.record(v);
        u.record(v);
    }
    for v in [5, 64, 1 << 30] {
        b.record(v);
        u.record(v);
    }
    a.merge(&b);
    assert_eq!(a.count(), u.count());
    assert_eq!(a.sum(), u.sum());
    assert_eq!(a.to_json(), u.to_json());
}
