//! A Fig. 7-style latency sweep printed as CSV: three schemes, uniform
//! random traffic, 1 VC per VNet on the baseline system.
//!
//! ```text
//! cargo run --release --example latency_sweep > sweep.csv
//! ```

use upp::noc::config::NocConfig;
use upp::noc::topology::ChipletSystemSpec;
use upp::workloads::runner::{run_point, SchemeKind, SweepWindows};
use upp::workloads::synthetic::Pattern;

fn main() {
    let spec = ChipletSystemSpec::baseline();
    let cfg = NocConfig::default();
    // Short-ish windows so the example finishes in seconds; the full
    // reproduction (`repro fig7`) uses the paper's 10K/100K windows.
    let windows = SweepWindows {
        warmup: 2_000,
        measure: 20_000,
    };
    let rates = [0.01, 0.02, 0.04, 0.06, 0.08, 0.09, 0.10, 0.11, 0.12];

    println!("scheme,rate,net_latency,queue_latency,total_latency,throughput,upward_packets");
    for kind in SchemeKind::evaluated() {
        for &rate in &rates {
            let p = run_point(
                &spec,
                &cfg,
                &kind,
                0,
                Pattern::UniformRandom,
                rate,
                windows,
                7,
            );
            println!(
                "{},{:.3},{:.2},{:.2},{:.2},{:.4},{}",
                kind.label(),
                p.rate,
                p.net_latency,
                p.queue_latency,
                p.total_latency,
                p.throughput,
                p.upward_packets
            );
        }
        eprintln!("{} swept", kind.label());
    }
    eprintln!("done; pipe stdout into your plotter of choice.");
}
