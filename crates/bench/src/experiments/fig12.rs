//! Fig. 12: number of detected upward packets during full-system runs,
//! 1 VC vs 4 VCs per VNet. Reuses the Fig. 8 coherence runs.

use super::fig8;
use crate::report::{ExperimentResult, MarkdownTable};
use serde::Serialize;

/// Upward-packet counts for one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Detected upward packets with 1 VC per VNet.
    pub upward_1vc: u64,
    /// Detected upward packets with 4 VCs per VNet.
    pub upward_4vc: u64,
    /// Total packets delivered (1 VC run), for the <0.01% comparison.
    pub total_packets_1vc: u64,
}

/// Collects the counts from the Fig. 8 UPP runs.
pub fn collect(quick: bool) -> Vec<Row> {
    let d = fig8::data(quick);
    let mut rows: Vec<Row> = Vec::new();
    for r in d.runs.iter().filter(|r| r.scheme == "UPP" && r.vcs == 1) {
        let four = d
            .runs
            .iter()
            .find(|x| x.scheme == "UPP" && x.vcs == 4 && x.benchmark == r.benchmark)
            .map(|x| x.upward_packets)
            .unwrap_or(0);
        rows.push(Row {
            benchmark: r.benchmark.clone(),
            upward_1vc: r.upward_packets,
            upward_4vc: four,
            total_packets_1vc: r.packets,
        });
    }
    rows.sort_by(|a, b| a.benchmark.cmp(&b.benchmark));
    rows
}

/// Runs Fig. 12 and renders it.
pub fn run(quick: bool) -> ExperimentResult {
    let rows = collect(quick);
    let mut out = String::new();
    out.push_str("### Fig. 12 — detected upward packets in full-system runs\n\n");
    let mut t = MarkdownTable::new([
        "benchmark",
        "upward packets (1 VC)",
        "upward packets (4 VCs)",
        "total packets (1 VC)",
        "share (1 VC)",
    ]);
    for r in &rows {
        let share = if r.total_packets_1vc == 0 {
            0.0
        } else {
            r.upward_1vc as f64 / r.total_packets_1vc as f64
        };
        t.row([
            r.benchmark.clone(),
            r.upward_1vc.to_string(),
            r.upward_4vc.to_string(),
            r.total_packets_1vc.to_string(),
            format!("{:.4}%", share * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nPaper: upward packets stay a vanishing share of total packets, and adding VCs \
         (1 -> 4 per VNet) sharply reduces them.\n",
    );
    ExperimentResult::new("fig12", "Fig. 12: upward packet counts", out, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upward_packets_are_a_tiny_share_and_shrink_with_vcs() {
        let rows = collect(true);
        assert!(!rows.is_empty());
        let total_1: u64 = rows.iter().map(|r| r.upward_1vc).sum();
        let total_4: u64 = rows.iter().map(|r| r.upward_4vc).sum();
        assert!(
            total_4 <= total_1,
            "4 VCs must not detect more upward packets ({total_4} vs {total_1})"
        );
        for r in &rows {
            if r.total_packets_1vc > 0 {
                let share = r.upward_1vc as f64 / r.total_packets_1vc as f64;
                assert!(
                    share < 0.05,
                    "{}: upward share {share} too high",
                    r.benchmark
                );
            }
        }
    }
}
