//! Synthetic benchmark profiles standing in for the PARSEC and SPLASH-2
//! full-system runs of Figs. 8/12/15.
//!
//! The gem5 instruction streams are unavailable, so each benchmark is
//! replaced by a stochastic profile whose *network-visible* behaviour —
//! request intensity, outstanding-miss window, sharing (3-hop forwards),
//! writeback rate and burstiness — is tuned to match the paper's relative
//! ordering of traffic load (Fig. 12 reports total packet counts per
//! benchmark; canneal/fft/radix are the heavy, bursty ones where upward
//! packets appear). Transaction counts are scaled down ~1000x from the
//! paper's 1e7–3e8 packets so a run completes in under a second.

use serde::{Deserialize, Serialize};

/// Which benchmark suite a profile imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Suite {
    /// PARSEC (Fig. 8 top group).
    Parsec,
    /// SPLASH-2 (Fig. 8 bottom group).
    Splash2,
}

/// A network-level benchmark profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// Suite it belongs to.
    pub suite: Suite,
    /// Probability per cycle that a core with window room issues a request.
    pub intensity: f64,
    /// Maximum outstanding requests per core (MSHR-style window).
    pub window: usize,
    /// Transactions each core completes before the run ends.
    pub transactions: u64,
    /// Fraction of requests serviced by a 3-hop forward to a sharer core.
    pub fwd_prob: f64,
    /// Probability a completed transaction also emits a dirty writeback.
    pub wb_prob: f64,
    /// Probability the forwarded sharer lives in the requester's chiplet.
    pub local_sharer: f64,
    /// Period of the bursty issue phases in cycles (0 = steady).
    pub burst_period: u64,
    /// Fraction of a burst period spent in the hot phase.
    pub burst_duty: f64,
}

impl BenchmarkProfile {
    /// Issue intensity at `cycle`, applying the burst envelope: hot phases
    /// issue at full intensity, cold phases at a tenth.
    pub fn intensity_at(&self, cycle: u64) -> f64 {
        if self.burst_period == 0 {
            return self.intensity;
        }
        let phase = (cycle % self.burst_period) as f64 / self.burst_period as f64;
        if phase < self.burst_duty {
            (self.intensity / self.burst_duty).min(1.0)
        } else {
            self.intensity * 0.1
        }
    }
}

/// The 18 benchmark profiles of Fig. 8 (PARSEC + SPLASH-2).
pub fn all_benchmarks() -> Vec<BenchmarkProfile> {
    use Suite::{Parsec, Splash2};
    let p = |name, suite, intensity, window, transactions, fwd, wb, local, period, duty| {
        BenchmarkProfile {
            name,
            suite,
            intensity,
            window,
            transactions,
            fwd_prob: fwd,
            wb_prob: wb,
            local_sharer: local,
            burst_period: period,
            burst_duty: duty,
        }
    };
    vec![
        // PARSEC
        p(
            "blackscholes",
            Parsec,
            0.004,
            4,
            150,
            0.10,
            0.10,
            0.70,
            0,
            0.0,
        ),
        p(
            "bodytrack",
            Parsec,
            0.020,
            8,
            350,
            0.25,
            0.20,
            0.50,
            2_000,
            0.40,
        ),
        p(
            "canneal", Parsec, 0.045, 12, 450, 0.45, 0.30, 0.20, 1_200, 0.30,
        ),
        p("dedup", Parsec, 0.025, 8, 500, 0.30, 0.35, 0.40, 0, 0.0),
        p("facesim", Parsec, 0.012, 6, 250, 0.20, 0.25, 0.60, 0, 0.0),
        p(
            "fluidanimate",
            Parsec,
            0.018,
            8,
            300,
            0.30,
            0.25,
            0.55,
            1_600,
            0.35,
        ),
        p("swaptions", Parsec, 0.030, 8, 550, 0.15, 0.15, 0.60, 0, 0.0),
        p("vips", Parsec, 0.015, 6, 300, 0.20, 0.20, 0.55, 0, 0.0),
        // SPLASH-2
        p("barnes", Splash2, 0.015, 8, 280, 0.35, 0.20, 0.45, 0, 0.0),
        p("cholesky", Splash2, 0.015, 6, 280, 0.30, 0.25, 0.50, 0, 0.0),
        p("fft", Splash2, 0.050, 16, 450, 0.40, 0.30, 0.15, 900, 0.25),
        p("lu_cb", Splash2, 0.018, 8, 320, 0.25, 0.25, 0.55, 0, 0.0),
        p(
            "lu_ncb", Splash2, 0.022, 8, 320, 0.30, 0.25, 0.45, 1_500, 0.40,
        ),
        p(
            "radiosity",
            Splash2,
            0.014,
            6,
            280,
            0.30,
            0.20,
            0.50,
            0,
            0.0,
        ),
        p(
            "radix", Splash2, 0.055, 16, 450, 0.40, 0.30, 0.15, 800, 0.25,
        ),
        p("raytrace", Splash2, 0.012, 6, 250, 0.25, 0.15, 0.55, 0, 0.0),
        p(
            "water_nsquared",
            Splash2,
            0.010,
            6,
            250,
            0.25,
            0.20,
            0.55,
            0,
            0.0,
        ),
        p(
            "water_spatial",
            Splash2,
            0.012,
            6,
            260,
            0.25,
            0.20,
            0.60,
            0,
            0.0,
        ),
    ]
}

/// Looks a profile up by name.
pub fn benchmark(name: &str) -> Option<BenchmarkProfile> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_benchmarks_with_unique_names() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 18);
        let mut names: Vec<&str> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn heavy_benchmarks_are_heavier_than_light_ones() {
        // The paper's Fig. 12: canneal/fft/radix generate the most traffic
        // (and the only significant upward-packet counts); blackscholes the
        // least.
        let load = |n: &str| {
            let b = benchmark(n).unwrap();
            b.intensity * b.window as f64
        };
        for heavy in ["canneal", "fft", "radix"] {
            for light in ["blackscholes", "water_nsquared", "raytrace"] {
                assert!(load(heavy) > 2.0 * load(light), "{heavy} vs {light}");
            }
        }
    }

    #[test]
    fn burst_envelope_raises_hot_phase() {
        let b = benchmark("fft").unwrap();
        let hot = b.intensity_at(0);
        let cold = b.intensity_at((b.burst_period as f64 * 0.9) as u64);
        assert!(hot > b.intensity, "hot phase concentrates issue");
        assert!(cold < b.intensity * 0.2);
        let steady = benchmark("dedup").unwrap();
        assert_eq!(steady.intensity_at(123), steady.intensity);
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("radix").is_some());
        assert!(benchmark("doom").is_none());
    }

    #[test]
    fn probabilities_are_valid() {
        for b in all_benchmarks() {
            assert!((0.0..=1.0).contains(&b.fwd_prob), "{}", b.name);
            assert!((0.0..=1.0).contains(&b.wb_prob), "{}", b.name);
            assert!((0.0..=1.0).contains(&b.local_sharer), "{}", b.name);
            assert!(b.intensity > 0.0 && b.intensity < 0.5, "{}", b.name);
            assert!(b.window >= 1 && b.transactions > 0, "{}", b.name);
        }
    }
}
