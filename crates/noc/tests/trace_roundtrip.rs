//! Round-trip checks for the flight-recorder trace sinks.
//!
//! The JSONL stream and the Chrome trace export are consumed by external
//! tooling (jq pipelines, Perfetto), so their output must stay genuinely
//! parseable JSON with stable field names — not merely "looks like JSON".
//! These tests re-parse every emitted line with the workspace JSON parser
//! and reconstruct the original events field-for-field.

use std::io::Write;
use std::sync::{Arc, Mutex};

use serde_json::Value;
use upp_noc::control::{ControlClass, ControlRoute};
use upp_noc::ids::{NodeId, PacketId, Port, VnetId};
use upp_noc::ni::ConsumePolicy;
use upp_noc::routing::ChipletRouting;
use upp_noc::topology::ChipletSystemSpec;
use upp_noc::trace::BlockReason;
use upp_noc::{Network, NoScheme, NocConfig, System, TraceEvent, Tracer};

#[derive(Clone)]
struct SharedWriter(Arc<Mutex<Vec<u8>>>);

impl Write for SharedWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn parse_port(s: &str) -> Port {
    match s {
        "L" => Port::Local,
        "N" => Port::North,
        "E" => Port::East,
        "S" => Port::South,
        "W" => Port::West,
        "U" => Port::Up,
        "D" => Port::Down,
        other => panic!("unknown port {other:?}"),
    }
}

fn num(v: &Value, k: &str) -> u64 {
    v.get(k)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing numeric field {k:?} in {v:?}"))
}

fn st<'a>(v: &'a Value, k: &str) -> &'a str {
    v.get(k)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("missing string field {k:?} in {v:?}"))
}

fn port(v: &Value, k: &str) -> Port {
    parse_port(st(v, k))
}

/// Rebuilds a [`TraceEvent`] from its parsed JSONL form. Every field the
/// renderer writes must be recoverable, or the sink format has drifted.
fn rebuild(line: &Value) -> TraceEvent {
    let name = st(line, "event");
    let a = line.get("args").expect("args object");
    match name {
        "packet_created" => TraceEvent::PacketCreated {
            at: num(a, "at"),
            packet: PacketId(num(a, "packet")),
            src: NodeId(num(a, "src") as u32),
            dest: NodeId(num(a, "dest") as u32),
            vnet: VnetId(num(a, "vnet") as u8),
            len_flits: num(a, "len_flits") as u16,
        },
        "packet_injected" => TraceEvent::PacketInjected {
            at: num(a, "at"),
            packet: PacketId(num(a, "packet")),
            node: NodeId(num(a, "node") as u32),
        },
        "packet_ejected" => TraceEvent::PacketEjected {
            at: num(a, "at"),
            packet: PacketId(num(a, "packet")),
            node: NodeId(num(a, "node") as u32),
            net_latency: num(a, "net_latency"),
            total_latency: num(a, "total_latency"),
        },
        "vc_allocated" => TraceEvent::VcAllocated {
            at: num(a, "at"),
            packet: PacketId(num(a, "packet")),
            node: NodeId(num(a, "node") as u32),
            in_port: port(a, "in_port"),
            vc_flat: num(a, "vc_flat") as usize,
            out_port: port(a, "out_port"),
            out_vc: num(a, "out_vc") as usize,
        },
        "blocked" => TraceEvent::Blocked {
            at: num(a, "at"),
            packet: PacketId(num(a, "packet")),
            node: NodeId(num(a, "node") as u32),
            in_port: port(a, "in_port"),
            vc_flat: num(a, "vc_flat") as usize,
            out_port: a.get("out_port").and_then(Value::as_str).map(parse_port),
            reason: match st(a, "reason") {
                "credit" => BlockReason::Credit,
                "vc" => BlockReason::VcAlloc,
                "sa" => BlockReason::SwitchAlloc,
                other => panic!("unknown block reason {other:?}"),
            },
        },
        "bypass_pop" => TraceEvent::BypassPop {
            at: num(a, "at"),
            packet: PacketId(num(a, "packet")),
            node: NodeId(num(a, "node") as u32),
            in_port: port(a, "in_port"),
            vc_flat: num(a, "vc_flat") as usize,
            out_port: port(a, "out_port"),
        },
        "bypass_hop" => TraceEvent::BypassHop {
            at: num(a, "at"),
            packet: PacketId(num(a, "packet")),
            node: NodeId(num(a, "node") as u32),
            out_port: port(a, "out_port"),
        },
        "control_hop" => TraceEvent::ControlHop {
            at: num(a, "at"),
            node: NodeId(num(a, "node") as u32),
            out_port: port(a, "out_port"),
            class: match st(a, "class") {
                "req" => ControlClass::ReqLike,
                "ack" => ControlClass::AckLike,
                other => panic!("unknown control class {other:?}"),
            },
            bits: num(a, "bits") as u32,
            vnet: VnetId(num(a, "vnet") as u8),
            origin: NodeId(num(a, "origin") as u32),
            routing: match st(a, "routing") {
                "forward" => ControlRoute::Forward,
                "reverse" => ControlRoute::Reverse,
                other => panic!("unknown control routing {other:?}"),
            },
        },
        "popup_stage" => TraceEvent::PopupStage {
            at: num(a, "at"),
            node: NodeId(num(a, "node") as u32),
            vnet: VnetId(num(a, "vnet") as u8),
            packet: a.get("packet").and_then(Value::as_u64).map(PacketId),
            // Stage names are &'static str in the event; the tiny leak is
            // confined to this test process.
            from: Box::leak(st(a, "from").to_string().into_boxed_str()),
            to: Box::leak(st(a, "to").to_string().into_boxed_str()),
        },
        "popup_span" => TraceEvent::PopupSpan {
            node: NodeId(num(a, "node") as u32),
            vnet: VnetId(num(a, "vnet") as u8),
            packet: PacketId(num(a, "packet")),
            detected_at: num(a, "detected_at"),
            completed_at: num(a, "completed_at"),
            wait_ack: num(a, "wait_ack"),
            locate: num(a, "locate"),
            pop: num(a, "pop"),
        },
        other => panic!("unknown event name {other:?}"),
    }
}

/// One instance of every event variant, with the awkward corners populated
/// (absent optional port, absent optional packet).
fn all_variants() -> Vec<TraceEvent> {
    vec![
        TraceEvent::PacketCreated {
            at: 1,
            packet: PacketId(7),
            src: NodeId(0),
            dest: NodeId(63),
            vnet: VnetId(2),
            len_flits: 5,
        },
        TraceEvent::PacketInjected {
            at: 2,
            packet: PacketId(7),
            node: NodeId(0),
        },
        TraceEvent::PacketEjected {
            at: 90,
            packet: PacketId(7),
            node: NodeId(63),
            net_latency: 88,
            total_latency: 89,
        },
        TraceEvent::VcAllocated {
            at: 3,
            packet: PacketId(7),
            node: NodeId(5),
            in_port: Port::West,
            vc_flat: 2,
            out_port: Port::Down,
            out_vc: 4,
        },
        TraceEvent::Blocked {
            at: 4,
            packet: PacketId(7),
            node: NodeId(5),
            in_port: Port::North,
            vc_flat: 0,
            out_port: None,
            reason: BlockReason::VcAlloc,
        },
        TraceEvent::Blocked {
            at: 5,
            packet: PacketId(8),
            node: NodeId(6),
            in_port: Port::Local,
            vc_flat: 1,
            out_port: Some(Port::Up),
            reason: BlockReason::Credit,
        },
        TraceEvent::BypassPop {
            at: 6,
            packet: PacketId(9),
            node: NodeId(70),
            in_port: Port::East,
            vc_flat: 3,
            out_port: Port::Up,
        },
        TraceEvent::BypassHop {
            at: 7,
            packet: PacketId(9),
            node: NodeId(71),
            out_port: Port::North,
        },
        TraceEvent::ControlHop {
            at: 8,
            node: NodeId(66),
            out_port: Port::East,
            class: ControlClass::ReqLike,
            bits: 0xdead_beef,
            vnet: VnetId(1),
            origin: NodeId(66),
            routing: ControlRoute::Reverse,
        },
        TraceEvent::PopupStage {
            at: 9,
            node: NodeId(66),
            vnet: VnetId(1),
            packet: None,
            from: "idle",
            to: "request",
        },
        TraceEvent::PopupSpan {
            node: NodeId(66),
            vnet: VnetId(1),
            packet: PacketId(9),
            detected_at: 10,
            completed_at: 42,
            wait_ack: 12,
            locate: 3,
            pop: 17,
        },
    ]
}

#[test]
fn jsonl_codec_round_trips_every_variant() {
    for ev in all_variants() {
        let line: Value = serde_json::from_str(&ev.jsonl())
            .unwrap_or_else(|e| panic!("bad JSONL for {}: {e}", ev.name()));
        assert_eq!(rebuild(&line), ev, "event drifted through the JSONL codec");
    }
}

/// A traced run streamed through the JSONL sink re-parses event-for-event
/// against an identical run captured in the ring buffer (the simulator is
/// deterministic, so the two runs record the same sequence).
#[test]
fn jsonl_sink_stream_matches_ring_capture() {
    fn traced_run(tracer: Tracer) -> System {
        let topo = ChipletSystemSpec::baseline().build(3).unwrap();
        let net = Network::new(
            NocConfig::default().with_vcs_per_vnet(2),
            topo,
            std::sync::Arc::new(ChipletRouting::xy()),
            ConsumePolicy::Immediate { latency: 1 },
            3,
        );
        let mut sys = System::new(net, Box::new(NoScheme));
        sys.net_mut().set_tracer(tracer);
        let src = NodeId(0);
        let dest = NodeId(15);
        for i in 0..20u64 {
            sys.send(
                src,
                dest,
                VnetId((i % 3) as u8),
                if i % 3 == 2 { 5 } else { 1 },
            );
            sys.step();
        }
        sys.run(400);
        sys
    }

    let ring_sys = traced_run(Tracer::ring(1 << 16));
    let ring: Vec<TraceEvent> = ring_sys.net().tracer().events().cloned().collect();
    assert!(
        ring.len() > 100,
        "the run should record a rich event stream, got {}",
        ring.len()
    );
    assert_eq!(ring_sys.net().tracer().dropped(), 0, "ring must not wrap");

    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut jsonl_sys = traced_run(Tracer::jsonl(Box::new(SharedWriter(Arc::clone(&buf)))));
    jsonl_sys.net_mut().tracer_mut().flush();
    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), ring.len(), "one JSONL line per recorded event");
    for (line, expected) in lines.iter().zip(&ring) {
        let v: Value = serde_json::from_str(line).expect("line parses as JSON");
        assert_eq!(&rebuild(&v), expected, "line drifted: {line}");
    }
}

/// The Chrome/Perfetto export is one valid JSON document with the expected
/// trace-event envelope around every recorded event.
#[test]
fn chrome_trace_export_is_valid_json() {
    let topo = ChipletSystemSpec::baseline().build(3).unwrap();
    let net = Network::new(
        NocConfig::default().with_vcs_per_vnet(2),
        topo,
        std::sync::Arc::new(ChipletRouting::xy()),
        ConsumePolicy::Immediate { latency: 1 },
        3,
    );
    let mut sys = System::new(net, Box::new(NoScheme));
    sys.net_mut().set_tracer(Tracer::chrome());
    for i in 0..10u64 {
        sys.send(NodeId(0), NodeId(12), VnetId((i % 3) as u8), 1);
        sys.step();
    }
    sys.run(200);

    let doc = sys.net().tracer().chrome_trace_json();
    let v: Value = serde_json::from_str(&doc).expect("chrome export parses as JSON");
    let events = v
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), sys.net().tracer().len());
    assert!(!events.is_empty());
    for e in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "chrome event missing {key:?}: {e:?}");
        }
        let ph = st(e, "ph");
        assert!(ph == "i" || ph == "X", "unexpected phase {ph:?}");
        assert!(e.get("args").is_some());
    }
}
