//! Cross-validation: abstract verdicts must survive contact with the
//! concrete simulator.
//!
//! Every `upp-check` artifact embeds a concrete scenario and a predicted
//! outcome class; `upp-verify`'s bridge replays the scenario end to end
//! under the scheme-independent oracle. These tests replay both the
//! committed fixtures (guarding against silent drift in either the model
//! or the simulator) and freshly emitted artifacts (guarding the
//! generation path itself), and pin the fixtures byte-for-byte to what
//! the current generator emits.

use upp_check::explore::explore;
use upp_check::model::{ModelCfg, Mutation};
use upp_check::props::{check_bounded_recovery, check_no_livelock};
use upp_check::{clean_artifact, livelock_artifact, recovery_artifact};
use upp_verify::bridge::{replay_artifact, CheckArtifact, ExpectedOutcome};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {path}: {e}"))
}

/// The committed clean-verdict fixture replays through the full simulator
/// and drains under UPP, as the abstract proof predicted.
#[test]
fn committed_clean_fixture_replays_and_recovers() {
    let artifact = CheckArtifact::from_json(&fixture("clean_flagship.json")).expect("parses");
    assert_eq!(artifact.expected, ExpectedOutcome::Recovers);
    assert_eq!(artifact.scenario.scheme, "UPP");
    let report = replay_artifact(&artifact);
    assert!(
        report.confirmed,
        "clean verdict contradicted concretely: {}",
        report.summary()
    );
}

/// The committed watchdog-disabled fixture replays and wedges — the
/// oracle convicts a persistent circular wait, not a mere timeout.
#[test]
fn committed_never_expire_fixture_replays_and_wedges() {
    let artifact =
        CheckArtifact::from_json(&fixture("never_expire_watchdog.json")).expect("parses");
    assert_eq!(artifact.expected, ExpectedOutcome::Wedges);
    assert_eq!(artifact.scenario.scheme, "UPP@t=1000000");
    let report = replay_artifact(&artifact);
    assert!(
        report.confirmed,
        "wedge prediction contradicted concretely: {}",
        report.summary()
    );
    assert!(
        matches!(
            report.report.verdict,
            upp_verify::Verdict::OracleViolation(_)
        ),
        "expected an oracle conviction, got {:?}",
        report.report.verdict
    );
}

/// The committed fixtures are exactly what the current generator emits —
/// neither the model, the trace rendering, nor the embedded scenario has
/// drifted since they were committed.
#[test]
fn fixtures_match_current_generator_output() {
    let clean = {
        let cfg = ModelCfg::flagship(2);
        let ex = explore(&cfg, true, 2_000_000).expect("explores");
        check_bounded_recovery(&ex).expect("clean");
        check_no_livelock(&ex).expect("clean");
        clean_artifact(&ex)
    };
    assert_eq!(clean.to_json(), fixture("clean_flagship.json"));

    let convicted = {
        let mut cfg = ModelCfg::flagship(2);
        cfg.mutation = Some(Mutation::NeverExpireWatchdog);
        let ex = explore(&cfg, true, 2_000_000).expect("explores");
        let v = check_bounded_recovery(&ex).expect_err("convicted");
        recovery_artifact(&ex, &v)
    };
    assert_eq!(convicted.to_json(), fixture("never_expire_watchdog.json"));
}

/// A freshly emitted weakened-variant artifact (circuit insertion
/// skipped, concretized to the recovery-free scheme) replays and wedges.
#[test]
fn fresh_skip_circuit_artifact_replays_and_wedges() {
    let mut cfg = ModelCfg::flagship(2);
    cfg.mutation = Some(Mutation::SkipCircuitInsert);
    let ex = explore(&cfg, true, 2_000_000).expect("explores");
    let v = check_bounded_recovery(&ex).expect_err("convicted");
    let artifact = recovery_artifact(&ex, &v);
    assert_eq!(artifact.scenario.scheme, "none");

    // Round-trip through JSON first: the replayed artifact is the wire
    // form, exactly what a bug report would carry.
    let artifact = CheckArtifact::from_json(&artifact.to_json()).expect("round-trips");
    let report = replay_artifact(&artifact);
    assert!(report.confirmed, "{}", report.summary());
}

/// The livelock counterexample's artifact also carries a replayable
/// wedge prediction, and its trace ends in the cycle.
#[test]
fn fresh_bounce_ack_livelock_artifact_is_well_formed_and_replays() {
    let mut cfg = ModelCfg::flagship(2);
    cfg.mutation = Some(Mutation::BounceAck);
    let ex = explore(&cfg, true, 2_000_000).expect("explores");
    let v = check_no_livelock(&ex).expect_err("convicted");
    let artifact = livelock_artifact(&ex, &v);
    assert_eq!(artifact.property, "no-livelock");
    assert!(artifact.steps.len() > v.cycle.len());

    let artifact = CheckArtifact::from_json(&artifact.to_json()).expect("round-trips");
    let report = replay_artifact(&artifact);
    assert!(report.confirmed, "{}", report.summary());
}

/// Negative control for the bridge itself: an artifact that predicts the
/// *wrong* outcome must be flagged as contradicted, proving the replay
/// check has teeth.
#[test]
fn bridge_flags_a_wrong_prediction() {
    let mut artifact = CheckArtifact::from_json(&fixture("clean_flagship.json")).expect("parses");
    artifact.expected = ExpectedOutcome::Wedges;
    let report = replay_artifact(&artifact);
    assert!(
        !report.confirmed,
        "a wrong prediction must not be confirmed"
    );
}
