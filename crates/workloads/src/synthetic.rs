//! Synthetic traffic patterns (Table II): uniform random, bit complement,
//! bit rotation and transpose, with the paper's mix of 1-flit control and
//! 5-flit data packets over 3 VNets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use upp_noc::ids::{NodeId, VnetId};
use upp_noc::sim::System;
use upp_noc::topology::Topology;

/// A synthetic destination pattern over the chiplet cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Destination drawn uniformly from all other cores.
    UniformRandom,
    /// `dest = !src` over the core-index bits.
    BitComplement,
    /// `dest = rotate_left(src, 1)` over the core-index bits.
    BitRotation,
    /// `dest = swap(high half, low half)` of the core-index bits.
    Transpose,
    /// A fraction of the traffic targets a small set of hot cores (directory
    /// or memory-controller pressure); the rest is uniform random.
    Hotspot,
    /// Destination is the next core in index order (nearest-neighbour
    /// streaming; mostly intra-chiplet with periodic boundary crossings).
    Neighbor,
}

impl Pattern {
    /// All four patterns of Fig. 7.
    pub const ALL: [Pattern; 4] = [
        Pattern::UniformRandom,
        Pattern::BitComplement,
        Pattern::BitRotation,
        Pattern::Transpose,
    ];

    /// The additional stress patterns this reproduction provides beyond the
    /// paper's four.
    pub const EXTRA: [Pattern; 2] = [Pattern::Hotspot, Pattern::Neighbor];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Pattern::UniformRandom => "uniform_random",
            Pattern::BitComplement => "bit_complement",
            Pattern::BitRotation => "bit_rotation",
            Pattern::Transpose => "transpose",
            Pattern::Hotspot => "hotspot",
            Pattern::Neighbor => "neighbor",
        }
    }
}

/// A Bernoulli packet source on every chiplet core.
///
/// `rate` is the offered load in **flits per cycle per node**; packet
/// injection probabilities are derated by the expected packet length so the
/// flit rate matches the paper's x-axes. Packets mix control (1 flit, VNets
/// 0/1) and data (5 flits, VNet 2) in the 2:1 ratio a request/forward/
/// response protocol produces.
#[derive(Debug)]
pub struct SyntheticTraffic {
    pattern: Pattern,
    rate: f64,
    cores: Vec<NodeId>,
    bits: u32,
    rng: SmallRng,
    /// Packets injected so far.
    pub injected: u64,
    /// Packets dropped because the source queue was full.
    pub rejected: u64,
}

impl SyntheticTraffic {
    /// Creates a source over the chiplet cores of `topo`.
    ///
    /// # Panics
    ///
    /// Panics for bit-permutation patterns when the core count is not a
    /// power of two.
    pub fn new(topo: &Topology, pattern: Pattern, rate: f64, seed: u64) -> Self {
        let cores: Vec<NodeId> = topo
            .chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect();
        let n = cores.len();
        let needs_pow2 = matches!(
            pattern,
            Pattern::BitComplement | Pattern::BitRotation | Pattern::Transpose
        );
        if needs_pow2 {
            assert!(
                n.is_power_of_two(),
                "{pattern:?} needs a power-of-two core count, got {n}"
            );
        }
        Self {
            pattern,
            rate,
            bits: n.trailing_zeros(),
            cores,
            rng: SmallRng::seed_from_u64(seed ^ TRAFFIC_SALT),
            injected: 0,
            rejected: 0,
        }
    }

    fn dest_index(&mut self, src_idx: usize) -> usize {
        let n = self.cores.len();
        let mask = n - 1;
        match self.pattern {
            Pattern::UniformRandom => {
                let mut d = self.rng.gen_range(0..n);
                if d == src_idx {
                    d = (d + 1) % n;
                }
                d
            }
            Pattern::BitComplement => !src_idx & mask,
            Pattern::BitRotation => ((src_idx << 1) | (src_idx >> (self.bits - 1))) & mask,
            Pattern::Transpose => {
                let half = self.bits / 2;
                let lo_mask = (1usize << half) - 1;
                let hi = src_idx >> half;
                let lo = src_idx & lo_mask;
                // For odd bit widths the middle bit stays in place.
                let mid = src_idx & !((lo_mask << half) | lo_mask) & mask;
                (lo << (self.bits - half)) | mid | hi
            }
            Pattern::Hotspot => {
                // 30% of packets hit one of four hot cores spread across
                // the chiplets; the rest are uniform.
                if self.rng.gen::<f64>() < 0.3 {
                    let hot = [0, n / 4, n / 2, 3 * n / 4];
                    let d = hot[self.rng.gen_range(0..hot.len())];
                    if d == src_idx {
                        (d + 1) % n
                    } else {
                        d
                    }
                } else {
                    let mut d = self.rng.gen_range(0..n);
                    if d == src_idx {
                        d = (d + 1) % n;
                    }
                    d
                }
            }
            Pattern::Neighbor => (src_idx + 1) % n,
        }
    }

    /// Chooses the packet type for one injection: VNets 0 and 1 carry 1-flit
    /// control packets, VNet 2 carries 5-flit data packets.
    fn pick_kind(&mut self, data_flits: u16) -> (VnetId, u16) {
        match self.rng.gen_range(0..3u8) {
            0 => (VnetId(0), 1),
            1 => (VnetId(1), 1),
            _ => (VnetId(2), data_flits),
        }
    }

    /// Expected flits per packet under the control/data mix.
    fn expected_flits(&self, data_flits: u16) -> f64 {
        (1.0 + 1.0 + f64::from(data_flits)) / 3.0
    }

    /// Injects this cycle's packets into `sys` (call once per cycle, before
    /// `System::step`).
    pub fn tick(&mut self, sys: &mut System) {
        let data_flits = sys.net().cfg().data_packet_flits as u16;
        let p = self.rate / self.expected_flits(data_flits);
        for i in 0..self.cores.len() {
            if self.rng.gen::<f64>() >= p {
                continue;
            }
            let d = self.dest_index(i);
            if d == i {
                continue;
            }
            let (vnet, len) = self.pick_kind(data_flits);
            let (src, dest) = (self.cores[i], self.cores[d]);
            if sys.send(src, dest, vnet, len).is_some() {
                self.injected += 1;
            } else {
                self.rejected += 1;
            }
        }
    }

    /// The pattern.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The offered flit rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// Salt separating traffic RNG streams from topology/router seeds.
const TRAFFIC_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use upp_noc::config::NocConfig;
    use upp_noc::network::Network;
    use upp_noc::ni::ConsumePolicy;
    use upp_noc::routing::ChipletRouting;
    use upp_noc::scheme::NoScheme;
    use upp_noc::topology::ChipletSystemSpec;

    fn topo() -> upp_noc::topology::Topology {
        ChipletSystemSpec::baseline().build(0).unwrap()
    }

    fn sys() -> System {
        let net = Network::new(
            NocConfig::default(),
            topo(),
            Arc::new(ChipletRouting::xy()),
            ConsumePolicy::Immediate { latency: 1 },
            1,
        );
        System::new(net, Box::new(NoScheme))
    }

    #[test]
    fn bit_patterns_are_permutations() {
        let t = topo();
        for pattern in [
            Pattern::BitComplement,
            Pattern::BitRotation,
            Pattern::Transpose,
        ] {
            let mut traffic = SyntheticTraffic::new(&t, pattern, 0.1, 0);
            let n = traffic.cores.len();
            let mut seen = vec![false; n];
            for i in 0..n {
                let d = traffic.dest_index(i);
                assert!(d < n);
                assert!(!seen[d], "{pattern:?} must be a permutation");
                seen[d] = true;
            }
        }
    }

    #[test]
    fn transpose_is_an_involution() {
        let t = topo();
        let mut traffic = SyntheticTraffic::new(&t, Pattern::Transpose, 0.1, 0);
        for i in 0..traffic.cores.len() {
            let d = traffic.dest_index(i);
            assert_eq!(traffic.dest_index(d), i, "transpose^2 = identity");
        }
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let t = topo();
        let mut traffic = SyntheticTraffic::new(&t, Pattern::BitComplement, 0.1, 0);
        for i in 0..traffic.cores.len() {
            let d = traffic.dest_index(i);
            assert_eq!(traffic.dest_index(d), i);
        }
    }

    #[test]
    fn hotspot_concentrates_and_neighbor_chains() {
        let t = topo();
        let mut hot = SyntheticTraffic::new(&t, Pattern::Hotspot, 0.1, 7);
        let n = hot.cores.len();
        let mut counts = vec![0u32; n];
        for _ in 0..4_000 {
            counts[hot.dest_index(5)] += 1;
        }
        let hot_total: u32 = [0, n / 4, n / 2, 3 * n / 4]
            .iter()
            .map(|&h| counts[h])
            .sum();
        assert!(
            hot_total > 800,
            "~30% of traffic must hit the hot cores, got {hot_total}/4000"
        );

        let mut nb = SyntheticTraffic::new(&t, Pattern::Neighbor, 0.1, 7);
        for i in 0..n {
            assert_eq!(nb.dest_index(i), (i + 1) % n);
        }
    }

    #[test]
    fn uniform_random_never_self_sends() {
        let t = topo();
        let mut traffic = SyntheticTraffic::new(&t, Pattern::UniformRandom, 0.1, 3);
        for i in 0..traffic.cores.len() {
            for _ in 0..20 {
                assert_ne!(traffic.dest_index(i), i);
            }
        }
    }

    #[test]
    fn offered_load_roughly_matches_rate() {
        let mut s = sys();
        let t = topo();
        let mut traffic = SyntheticTraffic::new(&t, Pattern::UniformRandom, 0.05, 9);
        for _ in 0..2_000 {
            traffic.tick(&mut s);
            s.step();
        }
        // Offered flits ~ rate * nodes * cycles; allow generous tolerance.
        let offered_flits = s.net().stats().flits_injected as f64;
        let expected = 0.05 * 64.0 * 2_000.0;
        assert!(
            (offered_flits - expected).abs() < expected * 0.25,
            "offered {offered_flits} vs expected {expected}"
        );
        assert!(traffic.injected > 0);
    }

    #[test]
    fn packet_mix_uses_all_three_vnets() {
        let mut s = sys();
        let t = topo();
        let mut traffic = SyntheticTraffic::new(&t, Pattern::UniformRandom, 0.08, 5);
        for _ in 0..3_000 {
            traffic.tick(&mut s);
            s.step();
        }
        for _ in 0..5_000 {
            if s.net().in_flight() == 0 {
                break;
            }
            s.step();
        }
        let per_vnet = &s.net().stats().ejected_per_vnet;
        assert!(
            per_vnet.iter().all(|&c| c > 0),
            "all VNets must carry traffic: {per_vnet:?}"
        );
    }
}
