//! Deadlock-freedom scheme interface.
//!
//! A [`Scheme`] is the *policy* layer driven around the network's per-cycle
//! schedule: UPP (in `upp-core`), composable routing and remote control (in
//! `upp-baselines`) all implement this trait against the mechanisms exposed
//! by [`crate::network::Network`].

use crate::ids::{Cycle, NodeId, PacketId};
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// The qualitative attributes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeProperties {
    /// Design modularity: unaffected by the rest of the system's topology.
    pub topology_modularity: bool,
    /// Design modularity: works with 1 VC per VNet.
    pub vc_modularity: bool,
    /// Design modularity: supports wormhole and virtual cut-through.
    pub flow_control_modularity: bool,
    /// Performance: no turn/VC usage restrictions (full path diversity).
    pub full_path_diversity: bool,
    /// Performance: no injection control.
    pub no_injection_control: bool,
    /// Flexibility: independent of (and reconfigurable with) the topology.
    pub topology_independence: bool,
}

/// A deadlock-freedom (or recovery) scheme.
///
/// All hooks default to no-ops so purely routing-based schemes (composable
/// routing) only implement [`Scheme::properties`].
pub trait Scheme: Send {
    /// Short scheme name ("UPP", "composable", "remote-control", "none").
    fn name(&self) -> &'static str;

    /// Table I attributes.
    fn properties(&self) -> SchemeProperties;

    /// Runs after event delivery, before injection/allocation — the place to
    /// observe fresh arrivals, run detection and emit protocol actions.
    fn pre_cycle(&mut self, net: &mut Network) {
        let _ = net;
    }

    /// Runs after allocation/commit, before the next cycle.
    fn post_cycle(&mut self, net: &mut Network) {
        let _ = net;
    }

    /// Called right after a packet is enqueued at its source NI (injection
    /// control hooks in here).
    fn on_packet_created(&mut self, net: &mut Network, id: PacketId, src: NodeId, dest: NodeId) {
        let _ = (net, id, src, dest);
    }

    /// Telemetry sampling hook, called at epoch boundaries when the
    /// network's [`crate::obs::ObsRegistry`] is enabled (the driver decides
    /// the cadence; it is never called while telemetry is disabled). The
    /// place to register scheme-specific metrics (idempotent) and sample
    /// gauges/distributions that are not worth maintaining event-by-event —
    /// e.g. watchdog-counter distributions or permit-queue depths. Counters
    /// that must stay exact across `advance_to` fast-forwards should be
    /// recorded from `pre_cycle`/`post_cycle` instead.
    fn observe(&mut self, net: &mut Network) {
        let _ = net;
    }

    /// Consulted before the clock fast-forwards over a quiescent gap from
    /// `from` to `to` (exclusive of `to`): the network has nothing
    /// scheduled in between, so `pre_cycle`/`post_cycle` would run over an
    /// unchanged network for every skipped cycle.
    ///
    /// Return `true` only when skipping those hook invocations is
    /// *cycle-exact* for this scheme — i.e. its per-cycle state would end
    /// up identical — applying any batched state update (e.g. resetting
    /// detection counters that a candidate-free cycle would have reset)
    /// before returning. Return `false` to veto the jump and keep per-cycle
    /// stepping; vetoing is always safe. The default is `true`, correct
    /// for schemes with no per-cycle state (routing-restriction schemes).
    fn advance_to(&mut self, net: &Network, from: Cycle, to: Cycle) -> bool {
        let _ = (net, from, to);
        true
    }
}

/// The unprotected reference scheme: fully permissive routing, no recovery.
/// Integration-induced deadlocks *will* wedge the network under load; used
/// to demonstrate that the deadlocks UPP recovers from are real.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoScheme;

impl Scheme for NoScheme {
    fn name(&self) -> &'static str {
        "none"
    }

    fn properties(&self) -> SchemeProperties {
        SchemeProperties {
            topology_modularity: true,
            vc_modularity: true,
            flow_control_modularity: true,
            full_path_diversity: true,
            no_injection_control: true,
            topology_independence: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scheme_claims_everything_but_protects_nothing() {
        let s = NoScheme;
        assert_eq!(s.name(), "none");
        let p = s.properties();
        assert!(p.topology_modularity && p.full_path_diversity);
    }
}
