//! Golden test for [`upp_noc::StallReport::render_text`]: a known scenario
//! wedges the unprotected reference scheme into a true deadlock, and the
//! forensic text report must match the committed golden byte-for-byte.
//!
//! The report is the first thing a developer reads when a nightly campaign
//! fails, so its exact shape (verdict line, hold/wait chains, circular-wait
//! channel chain, occupancy map) is pinned here. Refresh intentionally with
//! `UPP_UPDATE_GOLDENS=1`.

use std::path::{Path, PathBuf};

use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_verify::scenario::{scheme_kind, system_spec};
use upp_verify::TrafficTrace;
use upp_workloads::runner::build_system;

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// Compares `actual` against the committed golden `name`, or rewrites the
/// golden when `UPP_UPDATE_GOLDENS=1`.
fn check_golden(name: &str, actual: &str) {
    let path = goldens_dir().join(name);
    if std::env::var("UPP_UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(goldens_dir()).expect("goldens dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPP_UPDATE_GOLDENS=1 to record",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "{name}: stall report differs from committed golden.\n\
         If the change is intentional, refresh with UPP_UPDATE_GOLDENS=1.\n\
         --- golden ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn no_scheme_deadlock_stall_report_matches_golden() {
    // The verify crate's "liar" recipe: heavy uniform-random traffic on the
    // mini two-chiplet system with no recovery scheme wedges deterministically
    // at seed 0.
    let spec = system_spec("mini").expect("mini system");
    let kind = scheme_kind("none").expect("unprotected scheme");
    let seed = 0u64;
    let cfg = NocConfig::default().with_vcs_per_vnet(2);
    let mut built = build_system(&spec, cfg, &kind, 0, seed, ConsumePolicy::External);
    let trace = {
        let topo = built.sys.net().topo();
        TrafficTrace::random(topo, seed, 500, 0.25)
    };

    // Offer the trace retry-until-accepted and consume deliveries every
    // cycle (as the differential harness does), then stop once the network
    // has made no progress for a full detection window: the remaining
    // in-flight packets are wedged in the fabric, not at endpoints.
    let endpoints: Vec<upp_noc::ids::NodeId> = {
        let topo = built.sys.net().topo();
        topo.chiplets()
            .iter()
            .flat_map(|c| c.routers.iter().copied())
            .collect()
    };
    let num_vnets = built.sys.net().router(endpoints[0]).num_vnets();
    let mut pending: std::collections::VecDeque<usize> = Default::default();
    let mut next_entry = 0usize;
    const STALL_WINDOW: u64 = 1_000;
    const MAX_CYCLES: u64 = 4_000;
    loop {
        let now = built.sys.net().cycle();
        while next_entry < trace.entries.len() && trace.entries[next_entry].at <= now {
            pending.push_back(next_entry);
            next_entry += 1;
        }
        for _ in 0..pending.len() {
            let i = pending.pop_front().expect("non-empty");
            let e = &trace.entries[i];
            if built.sys.send(e.src, e.dest, e.vnet, e.len_flits).is_none() {
                pending.push_back(i);
            }
        }
        built.sys.step();
        for &node in &endpoints {
            for v in 0..num_vnets {
                while built
                    .sys
                    .net_mut()
                    .pop_delivered(node, upp_noc::ids::VnetId(v as u8))
                    .is_some()
                {}
            }
        }
        let net = built.sys.net();
        if net.cycle().saturating_sub(net.last_progress()) >= STALL_WINDOW {
            break;
        }
        assert!(
            net.cycle() < MAX_CYCLES,
            "scenario failed to wedge within {MAX_CYCLES} cycles"
        );
    }

    let report = built.sys.stall_report();
    assert!(
        report.is_deadlock(),
        "stall must be a circular wait, got:\n{}",
        report.render_text()
    );
    assert!(!report.wedged.is_empty());
    assert!(report.held_flits() > 0);
    check_golden("stall_report.txt", &report.render_text());
}
