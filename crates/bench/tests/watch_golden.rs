//! Alert-stream golden guard: the committed `upp-alerts/v1` fixture pins
//! the watcher's byte-exact output on a seeded deadlock run, across the
//! serial kernel, the sharded kernel, and the `UPP_ALWAYS_TICK=1`
//! reference scheduler. Like `scheduler_golden.rs`, this test deliberately
//! has **no** `UPP_UPDATE_GOLDENS` refresh path — a failure means the
//! watcher (or the simulation underneath it) changed behaviour, and the
//! fix is in the code, never in the golden.
//!
//! The fixture was recorded by:
//!
//! ```text
//! simulate --scheme none --pattern hotspot --rate 0.25 --cycles 6000 \
//!          --seed 7 --watch-every 100 --watch-out goldens/upp_alerts.jsonl
//! ```
//!
//! (`--watch-every 100` because the wedge-to-stall window on this run is
//! ~600 cycles: the escalate threshold needs 4 consecutive unhealthy
//! epochs, which the 200-cycle default cannot fit.)

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/upp_alerts.jsonl");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed golden {}: {e}", path.display()))
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("upp-watch-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Runs `simulate <args> --watch-every 100 --watch-out` and returns the
/// alert stream bytes. `always_tick` selects the reference scheduler in
/// the child's environment (never this process's).
fn watch_stream(args: &[&str], out_name: &str, always_tick: bool) -> String {
    let out = tmp_path(out_name);
    let _ = std::fs::remove_file(&out);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_simulate"));
    if always_tick {
        cmd.env("UPP_ALWAYS_TICK", "1");
    } else {
        cmd.env_remove("UPP_ALWAYS_TICK");
    }
    let status = cmd
        .args(args)
        .args(["--watch-every", "100", "--watch-out"])
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("simulate binary runs");
    assert!(status.success(), "simulate {args:?} failed: {status}");
    std::fs::read_to_string(&out).expect("simulate wrote the alert stream")
}

const DEADLOCK: &[&str] = &[
    "--scheme",
    "none",
    "--pattern",
    "hotspot",
    "--rate",
    "0.25",
    "--cycles",
    "6000",
    "--seed",
    "7",
];

#[test]
fn alert_stream_matches_committed_golden() {
    let expected = golden();
    // The golden is a real stream: header plus at least one raise, one
    // critical escalate and one clear (guards against a truncated fixture
    // silently weakening this test).
    assert!(
        expected.contains("\"schema\":\"upp-alerts/v1\""),
        "{expected}"
    );
    for needle in [
        "\"event\":\"raise\"",
        "\"event\":\"escalate\"",
        "\"event\":\"clear\"",
    ] {
        assert!(
            expected.contains(needle),
            "fixture lost {needle}:\n{expected}"
        );
    }
    let got = watch_stream(DEADLOCK, "serial.jsonl", false);
    assert!(
        got == expected,
        "alert stream diverged from the committed golden (no refresh path — \
         fix the watcher).\n--- golden ---\n{expected}\n--- got ---\n{got}"
    );
}

#[test]
fn alert_stream_is_kernel_and_scheduler_invariant() {
    let expected = golden();
    for shards in ["2", "4"] {
        let mut args: Vec<&str> = DEADLOCK.to_vec();
        args.extend_from_slice(&["--shards", shards]);
        let got = watch_stream(&args, &format!("shards_{shards}.jsonl"), false);
        assert!(
            got == expected,
            "--shards {shards} alert stream diverged from the committed \
             golden.\n--- golden ---\n{expected}\n--- shards {shards} ---\n{got}"
        );
    }
    let off = watch_stream(DEADLOCK, "always_tick.jsonl", true);
    assert!(
        off == expected,
        "UPP_ALWAYS_TICK=1 alert stream diverged from the committed \
         golden.\n--- golden ---\n{expected}\n--- always tick ---\n{off}"
    );
}

/// A healthy run's stream is exactly the header line: zero alert records,
/// byte-stable, so `--watch` can be left on in scripted pipelines without
/// polluting their output.
#[test]
fn clean_run_stream_is_header_only() {
    let clean: &[&str] = &[
        "--scheme",
        "upp",
        "--pattern",
        "transpose",
        "--rate",
        "0.10",
        "--cycles",
        "4000",
        "--seed",
        "7",
    ];
    let got = watch_stream(clean, "clean.jsonl", false);
    assert_eq!(
        got, "{\"upp_alerts\":1,\"schema\":\"upp-alerts/v1\",\"every\":100}\n",
        "clean run should emit the header and nothing else"
    );
}
