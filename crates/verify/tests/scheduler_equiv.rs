//! Scheduler-equivalence properties: the active-set cycle scheduler (skip
//! idle routers/NIs, fast-forward quiescent gaps) must be unobservable.
//! For random scenarios across every recovery scheme, a run with the
//! scheduler on and the same run with it off must produce identical
//! delivered-packet multisets, identical verdicts at identical cycles,
//! identical latency-attribution profiles and identical health-monitor
//! alert streams — the scheduler may only change
//! how fast wall-clock time passes, never what the simulation computes.

use proptest::prelude::*;
use upp_core::UppConfig;
use upp_noc::config::NocConfig;
use upp_noc::ni::ConsumePolicy;
use upp_noc::sim::RunOutcome;
use upp_noc::topology::{ChipletSystemSpec, SystemKind};
use upp_verify::scenario::{random_scenario, CampaignParams};
use upp_verify::{oracle_for, run_scenario_sharded, run_scenario_with, RunReport};
use upp_workloads::runner::{build_system, SchemeKind};
use upp_workloads::synthetic::{Pattern, SyntheticTraffic};

const SCHEMES: [&str; 3] = ["UPP", "remote-control", "composable"];

/// Everything a run observably computed, with `Verdict` flattened to its
/// debug form (it carries no `PartialEq`).
fn observables(r: &RunReport) -> (usize, String, String) {
    (
        r.created,
        format!("{:?}", r.verdict),
        format!("{}", r.end_cycle),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full-scenario equivalence on the mini system: traffic, dynamic
    /// faults and pauses, all three recovery schemes, per-cycle stepping
    /// harness (exercises idle-component skipping; the harness steps every
    /// cycle itself, so no fast-forwarding occurs here).
    #[test]
    fn scheduler_is_unobservable_in_scenario_runs(
        seed in 0u64..5_000,
        scheme_ix in 0usize..SCHEMES.len(),
        rate_milli in 15u64..60,
        faulty in any::<bool>(),
    ) {
        let label = SCHEMES[scheme_ix];
        // The composable search requires a fault-free system (Sec. VI-B).
        prop_assume!(!faulty || label != "composable");
        let params = CampaignParams {
            rate: rate_milli as f64 / 1000.0,
            link_faults: if faulty { 2 } else { 0 },
            throttles: if faulty { 1 } else { 0 },
            ..CampaignParams::default()
        };
        let mut sc = random_scenario(&params, seed).expect("valid params");
        sc.scheme = label.into();
        let oracle = oracle_for(&sc);
        let on = run_scenario_with(&sc, oracle, true);
        let off = run_scenario_with(&sc, oracle, false);
        prop_assert_eq!(observables(&on), observables(&off), "run shape diverged");
        prop_assert_eq!(&on.sent, &off.sent, "accepted-send multiset diverged");
        prop_assert_eq!(&on.delivered, &off.delivered, "delivered multiset diverged");
        prop_assert_eq!(&on.profile, &off.profile, "latency profile diverged");
        prop_assert_eq!(&on.alerts, &off.alerts, "alert stream diverged");
    }

    /// The scheduler and the sharded parallel kernel compose: the cross
    /// combination (always-tick serial vs active-set sharded) must still
    /// agree, so neither optimization's correctness depends on the other
    /// being off. Per-shard equivalence lives in `shard_equiv.rs`.
    #[test]
    fn scheduler_and_sharding_compose(
        seed in 0u64..5_000,
        scheme_ix in 0usize..SCHEMES.len(),
        shards in prop_oneof![Just(2usize), Just(4)],
        rate_milli in 15u64..60,
    ) {
        let label = SCHEMES[scheme_ix];
        let params = CampaignParams {
            rate: rate_milli as f64 / 1000.0,
            ..CampaignParams::default()
        };
        let mut sc = random_scenario(&params, seed).expect("valid params");
        sc.scheme = label.into();
        let oracle = oracle_for(&sc);
        let serial_off = run_scenario_with(&sc, oracle, false);
        let sharded_on = run_scenario_sharded(&sc, oracle, true, shards);
        prop_assert_eq!(
            observables(&serial_off),
            observables(&sharded_on),
            "run shape diverged"
        );
        prop_assert_eq!(
            &serial_off.delivered,
            &sharded_on.delivered,
            "delivered multiset diverged"
        );
        prop_assert_eq!(
            &serial_off.profile,
            &sharded_on.profile,
            "latency profile diverged"
        );
        prop_assert_eq!(
            &serial_off.alerts,
            &sharded_on.alerts,
            "alert stream diverged"
        );
    }

    /// Drain-loop equivalence on the full baseline system: a traffic burst
    /// followed by `run_until_drained`, which is where quiescent-gap
    /// fast-forwarding actually fires. Outcomes (including the exact drain
    /// cycle) and the complete stats snapshot must match byte for byte.
    #[test]
    fn fast_forward_preserves_outcome_and_stats(
        kind_ix in 0usize..4,
        pattern_ix in 0usize..3,
        vcs in prop_oneof![Just(1usize), Just(2)],
        seed in 0u64..5_000,
        rate_milli in 10u64..70,
    ) {
        let kind = match kind_ix {
            0 => SchemeKind::Upp(UppConfig::default()),
            1 => SchemeKind::Upp(UppConfig::with_threshold(6)),
            2 => SchemeKind::Composable,
            _ => SchemeKind::RemoteControl,
        };
        let pattern = match pattern_ix {
            0 => Pattern::UniformRandom,
            1 => Pattern::Transpose,
            _ => Pattern::BitComplement,
        };
        let run = |scheduler: bool| -> (RunOutcome, u64, String) {
            let spec = ChipletSystemSpec::of_kind(SystemKind::Baseline);
            let cfg = NocConfig::default().with_vcs_per_vnet(vcs);
            let built = build_system(
                &spec,
                cfg,
                &kind,
                0,
                seed,
                ConsumePolicy::Immediate { latency: 1 },
            );
            let mut sys = built.sys;
            sys.net_mut().set_active_scheduler(scheduler);
            let rate = rate_milli as f64 / 1000.0;
            let mut traffic = SyntheticTraffic::new(sys.net().topo(), pattern, rate, seed);
            for _ in 0..300 {
                traffic.tick(&mut sys);
                sys.step();
            }
            let out = sys.run_until_drained(200_000);
            let stats = serde_json::to_string(sys.net().stats()).expect("serializable");
            (out, sys.net().cycle(), stats)
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(on.0, off.0, "drain outcome diverged");
        prop_assert_eq!(on.1, off.1, "final cycle diverged");
        prop_assert_eq!(on.2, off.2, "stats snapshot diverged");
    }

    /// Telemetry equivalence: the protocol-state registry (`--obs`) reads
    /// protocol structures the scheduler is allowed to skip over, so its
    /// exported bytes — the full summary *and* every epoch line — must be
    /// identical between the active-set and always-tick kernels. Hotspot
    /// traffic with slow consumption keeps the popup path busy, and the
    /// drain loop runs under manual stepping so epoch cuts land on the
    /// same cycles in both runs.
    #[test]
    fn telemetry_bytes_are_scheduler_invariant(
        kind_ix in 0usize..3,
        seed in 0u64..5_000,
        rate_milli in 20u64..70,
    ) {
        let kind = match kind_ix {
            0 => SchemeKind::Upp(UppConfig::default()),
            1 => SchemeKind::Composable,
            _ => SchemeKind::RemoteControl,
        };
        let run = |scheduler: bool| -> (String, Vec<String>) {
            let spec = ChipletSystemSpec::of_kind(SystemKind::Baseline);
            let built = build_system(
                &spec,
                NocConfig::default(),
                &kind,
                0,
                seed,
                ConsumePolicy::Immediate { latency: 40 },
            );
            let mut sys = built.sys;
            sys.net_mut().set_active_scheduler(scheduler);
            sys.net_mut().enable_obs();
            let rate = rate_milli as f64 / 1000.0;
            let mut traffic =
                SyntheticTraffic::new(sys.net().topo(), Pattern::Hotspot, rate, seed);
            let mut epochs = Vec::new();
            let cut = |sys: &mut upp_noc::sim::System| {
                sys.observe();
                let c = sys.net().cycle();
                let snap = sys.net_mut().obs_mut().take_epoch(c);
                sys.net().obs().epoch_json(&snap)
            };
            for c in 0..600u64 {
                traffic.tick(&mut sys);
                sys.step();
                if c % 100 == 99 {
                    epochs.push(cut(&mut sys));
                }
            }
            let mut extra = 0u64;
            while sys.net().in_flight() > 0 && !sys.net().stalled() && extra < 100_000 {
                sys.step();
                extra += 1;
                if extra.is_multiple_of(100) {
                    epochs.push(cut(&mut sys));
                }
            }
            sys.observe();
            (sys.net().obs().summary_json(sys.net().cycle()), epochs)
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(on.0, off.0, "obs summary bytes diverged");
        prop_assert_eq!(on.1, off.1, "obs epoch stream diverged");
    }

    /// Descriptor-arena churn equivalence: sustained traffic long enough
    /// that the packet-descriptor slab recycles every handle many times
    /// over (created packets ≥ 2x the slab's peak footprint). Handle reuse
    /// must be unobservable to the active-set scheduler: full stats
    /// snapshots, the delivered multiset, latency-profile bytes, telemetry
    /// bytes and the memory report must be identical on/off.
    #[test]
    fn descriptor_churn_is_scheduler_invariant(
        kind_ix in 0usize..3,
        seed in 0u64..5_000,
        rate_milli in 25u64..60,
    ) {
        let kind = match kind_ix {
            0 => SchemeKind::Upp(UppConfig::default()),
            1 => SchemeKind::Composable,
            _ => SchemeKind::RemoteControl,
        };
        let run = |scheduler: bool| -> (String, String, String, upp_tracetools::ProfileSummary, String) {
            let spec = ChipletSystemSpec::of_kind(SystemKind::Baseline);
            let built = build_system(
                &spec,
                NocConfig::default(),
                &kind,
                0,
                seed,
                ConsumePolicy::External,
            );
            let mut sys = built.sys;
            sys.net_mut().set_active_scheduler(scheduler);
            sys.net_mut().enable_obs();
            sys.net_mut()
                .tracer_mut()
                .set_profiler(Some(Box::new(upp_noc::profile::SpanRecorder::new())));
            let endpoints: Vec<upp_noc::ids::NodeId> = {
                let topo = sys.net().topo();
                topo.chiplets()
                    .iter()
                    .flat_map(|c| c.routers.iter().copied())
                    .collect()
            };
            let num_vnets = sys.net().cfg().num_vnets;
            let rate = rate_milli as f64 / 1000.0;
            let mut traffic =
                SyntheticTraffic::new(sys.net().topo(), Pattern::UniformRandom, rate, seed);
            let mut delivered: std::collections::BTreeMap<(u32, u32, u8, u16), usize> =
                std::collections::BTreeMap::new();
            let mut pop_all = |sys: &mut upp_noc::sim::System| {
                for &node in &endpoints {
                    for v in 0..num_vnets {
                        while let Some(d) =
                            sys.net_mut().pop_delivered(node, upp_noc::ids::VnetId(v as u8))
                        {
                            *delivered
                                .entry((d.pkt.src.0, d.pkt.dest.0, d.pkt.vnet.0, d.pkt.len_flits))
                                .or_default() += 1;
                        }
                    }
                }
            };
            for _ in 0..1_500u64 {
                traffic.tick(&mut sys);
                sys.step();
                pop_all(&mut sys);
            }
            let mut extra = 0u64;
            while sys.net().in_flight() > 0 && !sys.net().stalled() && extra < 200_000 {
                sys.step();
                pop_all(&mut sys);
                extra += 1;
            }
            let mem = sys.net().mem_report();
            assert!(
                sys.net().stats().packets_created as usize >= 2 * mem.arena_slots,
                "churn too weak to exercise handle recycling: {} created vs {} slots",
                sys.net().stats().packets_created,
                mem.arena_slots
            );
            let mut profile = upp_tracetools::ProfileSummary::new("baseline", "churn");
            if let Some(mut rec) = sys.net_mut().tracer_mut().set_profiler(None) {
                profile.absorb_recorder(&mut rec);
            }
            sys.observe();
            let delivered_json = format!("{delivered:?}");
            (
                serde_json::to_string(sys.net().stats()).expect("serializable"),
                delivered_json,
                sys.net().obs().summary_json(sys.net().cycle()),
                profile,
                serde_json::to_string(&mem).expect("serializable"),
            )
        };
        let on = run(true);
        let off = run(false);
        prop_assert_eq!(&on.0, &off.0, "stats snapshot diverged under churn");
        prop_assert_eq!(&on.1, &off.1, "delivered multiset diverged under churn");
        prop_assert_eq!(&on.2, &off.2, "obs bytes diverged under churn");
        prop_assert_eq!(&on.3, &off.3, "profile diverged under churn");
        prop_assert_eq!(&on.4, &off.4, "memory report diverged under churn");
    }
}
