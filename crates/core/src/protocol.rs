//! Shared protocol definitions: the single source of truth for UPP's
//! tuning constants and stage structure.
//!
//! Both the concrete scheme implementation ([`crate::scheme`]) and the
//! abstract model checker (`upp-check` in `crates/check`) consume this
//! module, so the two cannot silently drift: a change to the detection
//! threshold, the stage set or the legal stage transitions here is
//! immediately reflected in the simulator *and* in the exhaustively
//! explored transition system.

use serde::{Deserialize, Serialize};

/// Deadlock-detection timeout in cycles (Table II of the paper uses 20).
///
/// The default for [`crate::UppConfig::threshold`] and for the model
/// checker's watchdog bound.
pub const DEFAULT_DETECTION_THRESHOLD: u64 = 20;

/// Capacity of each per-VNet NI ejection queue, in packets (Table II).
///
/// Mirrors `upp_noc::config::NocConfig::default().ejection_queue_entries`;
/// a unit test in this module pins the two together (the dependency points
/// from `upp-core` to `upp-noc`, so the constant cannot live in one place
/// syntactically — it lives here semantically and is guarded by the test).
pub const DEFAULT_EJECTION_QUEUE_ENTRIES: usize = 4;

/// Minimum gap, in cycles, between consecutive protocol signals emitted by
/// one interposer router's serial signal unit (Sec. V-B5:
/// `Size_of_Data_Packet + 1`).
#[inline]
pub fn default_signal_gap(data_packet_flits: usize) -> u64 {
    data_packet_flits as u64 + 1
}

/// Effective capacity of a boundary router's circuit table.
///
/// The concrete table (`upp_noc::router::Router::record_circuit`) is keyed
/// by `(VNet, popup destination)` and a re-insert for the same key evicts
/// the stale reverse path, so with a single VNet the table never holds more
/// than one live entry per distinct destination. The abstract model uses
/// this as its default table capacity; shrinking it below the number of
/// destinations (via `upp-check explore --circuit-cap`) explores the
/// eviction races a hardware-bounded table would introduce.
#[inline]
pub fn circuit_capacity(num_destinations: usize) -> usize {
    num_destinations
}

/// The popup protocol's stage set (Secs. V-B/V-C).
///
/// The concrete scheme's per-`(router, VNet)` state machine and the model
/// checker's abstract router state both draw their stages — and the legal
/// transitions between them — from this enum. [`PopupStage::name`] is the
/// label used by trace events (`TraceEvent::PopupStage`) and counterexample
/// artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PopupStage {
    /// No popup in flight; the watchdog counter is live.
    Idle,
    /// `UPP_req` queued or sent; waiting for the `UPP_ack`.
    WaitAck,
    /// Ack received with the head flit still at the interposer router:
    /// popping flits up the bypass path.
    PopInterposer,
    /// Ack received for a partly-transmitted worm: searching for the
    /// chiplet router currently holding the head flit.
    LocateHead,
    /// Popping from the chiplet router that holds the head flit.
    PopChiplet,
}

impl PopupStage {
    /// Every stage, in protocol order.
    pub const ALL: [PopupStage; 5] = [
        PopupStage::Idle,
        PopupStage::WaitAck,
        PopupStage::PopInterposer,
        PopupStage::LocateHead,
        PopupStage::PopChiplet,
    ];

    /// The stage's canonical label (used by trace events and artifacts).
    pub fn name(self) -> &'static str {
        match self {
            PopupStage::Idle => "Idle",
            PopupStage::WaitAck => "WaitAck",
            PopupStage::PopInterposer => "PopInterposer",
            PopupStage::LocateHead => "LocateHead",
            PopupStage::PopChiplet => "PopChiplet",
        }
    }

    /// Parses a canonical label back into a stage.
    pub fn from_name(name: &str) -> Option<PopupStage> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// True while no popup is in flight.
    pub fn is_idle(self) -> bool {
        self == PopupStage::Idle
    }

    /// The protocol's legal stage transitions (the edges of Fig. 5's state
    /// machine, plus the false-positive bail-outs back to `Idle`).
    ///
    /// * `Idle → WaitAck` — watchdog expiry selects an upward packet;
    /// * `WaitAck → PopInterposer` — ack arrives, head still buffered here;
    /// * `WaitAck → LocateHead` — ack arrives for a partly-transmitted worm;
    /// * `WaitAck → Idle` — the packet proceeded normally (stop sent);
    /// * `LocateHead → PopInterposer` — the head returned to the interposer;
    /// * `LocateHead → PopChiplet` — the head was found inside the chiplet;
    /// * `LocateHead → Idle` — the packet drained normally (stop sent);
    /// * `PopInterposer → Idle`, `PopChiplet → Idle` — tail flit delivered.
    pub fn can_transition_to(self, next: PopupStage) -> bool {
        use PopupStage::*;
        matches!(
            (self, next),
            (Idle, WaitAck)
                | (WaitAck, PopInterposer)
                | (WaitAck, LocateHead)
                | (WaitAck, Idle)
                | (LocateHead, PopInterposer)
                | (LocateHead, PopChiplet)
                | (LocateHead, Idle)
                | (PopInterposer, Idle)
                | (PopChiplet, Idle)
        )
    }
}

impl std::fmt::Display for PopupStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upp_noc::config::NocConfig;

    #[test]
    fn constants_match_the_concrete_configuration() {
        let cfg = NocConfig::default();
        assert_eq!(
            DEFAULT_EJECTION_QUEUE_ENTRIES, cfg.ejection_queue_entries,
            "protocol::DEFAULT_EJECTION_QUEUE_ENTRIES must track NocConfig"
        );
        assert_eq!(default_signal_gap(cfg.data_packet_flits), 6);
        assert_eq!(DEFAULT_DETECTION_THRESHOLD, 20, "Table II");
    }

    #[test]
    fn stage_names_round_trip() {
        for s in PopupStage::ALL {
            assert_eq!(PopupStage::from_name(s.name()), Some(s));
            assert_eq!(format!("{s}"), s.name());
        }
        assert_eq!(PopupStage::from_name("Bogus"), None);
    }

    #[test]
    fn transition_relation_is_the_protocol_state_machine() {
        use PopupStage::*;
        // Spot-check the load-bearing edges and non-edges.
        assert!(Idle.can_transition_to(WaitAck));
        assert!(WaitAck.can_transition_to(PopInterposer));
        assert!(WaitAck.can_transition_to(LocateHead));
        assert!(WaitAck.can_transition_to(Idle));
        assert!(LocateHead.can_transition_to(PopChiplet));
        assert!(PopInterposer.can_transition_to(Idle));
        assert!(!Idle.can_transition_to(PopInterposer), "ack needs a req");
        assert!(!PopInterposer.can_transition_to(WaitAck));
        assert!(!PopChiplet.can_transition_to(PopInterposer));
        // No stage transitions to itself: dwell is not a transition.
        for s in PopupStage::ALL {
            assert!(!s.can_transition_to(s));
        }
        // Every non-idle stage can eventually return to Idle.
        for s in PopupStage::ALL {
            if !s.is_idle() {
                let reaches_idle = PopupStage::ALL
                    .into_iter()
                    .any(|n| s.can_transition_to(n) && (n.is_idle() || n.can_transition_to(Idle)));
                assert!(reaches_idle, "{s} must have a path back to Idle");
            }
        }
    }

    #[test]
    fn circuit_capacity_is_one_entry_per_destination() {
        assert_eq!(circuit_capacity(4), 4);
        assert_eq!(circuit_capacity(1), 1);
    }
}
