//! The network: routers, NIs, staged links and the per-cycle schedule.

use crate::config::NocConfig;
use crate::control::{ControlMsg, DeliveredControl};
use crate::event::Event;
use crate::ids::{Cycle, NodeId, PacketId, Port, VnetId};
use crate::ni::{ConsumePolicy, Delivered, Ni, PermitState};
use crate::obs::ObsRegistry;
use crate::packet::{Flit, Packet, PacketArena, PacketDesc, RouteInfo};
use crate::router::{Router, RouterCtx};
use crate::routing::{GlobalCdg, GlobalChannel, RouteComputer};
use crate::stats::{NetStats, PacketRecord, PacketTracker};
use crate::topology::Topology;
use crate::trace::{StallReport, TraceEvent, Tracer, VcHold, WedgedPacket};
use serde::Serialize;
use std::sync::Arc;

/// A ring-buffer event calendar.
///
/// Every event is staged at most `lookahead = max(1 + link_latency,
/// credit_latency)` cycles into the future (and always strictly after
/// `now`), so `lookahead + 1` slots indexed by `cycle % slots.len()` can
/// never collide. Draining a cycle recycles its slot `Vec`, making the
/// steady-state schedule allocation-free where the former
/// `BTreeMap<Cycle, Vec<Event>>` allocated tree nodes and fresh vectors
/// every cycle on the hot path.
struct EventCalendar {
    slots: Vec<Vec<Event>>,
}

impl EventCalendar {
    fn new(cfg: &NocConfig) -> Self {
        let lookahead = (1 + cfg.link_latency).max(cfg.credit_latency);
        EventCalendar {
            slots: (0..=lookahead).map(|_| Vec::new()).collect(),
        }
    }

    #[inline]
    fn slot(&self, at: Cycle) -> usize {
        (at % self.slots.len() as Cycle) as usize
    }

    #[inline]
    fn push(&mut self, now: Cycle, at: Cycle, ev: Event) {
        debug_assert!(at > now, "events must be staged into the future");
        debug_assert!(
            at - now < self.slots.len() as Cycle,
            "event staged beyond the calendar horizon"
        );
        let idx = self.slot(at);
        self.slots[idx].push(ev);
    }

    /// Removes the events due at `now`; hand the drained `Vec` back through
    /// [`EventCalendar::recycle`] to reuse its capacity.
    fn take(&mut self, now: Cycle) -> Vec<Event> {
        let idx = self.slot(now);
        std::mem::take(&mut self.slots[idx])
    }

    fn recycle(&mut self, now: Cycle, mut events: Vec<Event>) {
        events.clear();
        let idx = self.slot(now);
        if self.slots[idx].is_empty() {
            self.slots[idx] = events;
        }
    }

    /// The earliest cycle in `now..now + horizon` with staged events, or
    /// `None` when the calendar is completely empty. Events are only ever
    /// staged within the horizon, so scanning the ring once is exhaustive.
    fn next_occupied_cycle(&self, now: Cycle) -> Option<Cycle> {
        (now..now + self.slots.len() as Cycle).find(|&c| !self.slots[self.slot(c)].is_empty())
    }

    /// Exact heap bytes of the calendar ring (slot capacities; the slots
    /// grow once to the workload's staging peak and are then recycled).
    fn mem_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Vec<Event>>()
            + self
                .slots
                .iter()
                .map(|s| s.capacity() * std::mem::size_of::<Event>())
                .sum::<usize>()
    }
}

/// Exact memory footprint of the simulation state, measured by walking the
/// live structures (no allocator instrumentation). Kernel-invariant by
/// construction: it covers routers, NIs, the packet-descriptor arena and the
/// event calendar — state whose layout is byte-identical between the serial
/// and sharded kernels — and deliberately excludes kernel-private scratch
/// such as shard mailboxes, so the same run reports the same bytes under
/// `--shards N` for every `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MemReport {
    /// Heap bytes across all routers (VC rings, state arrays, absorber).
    pub routers_bytes: usize,
    /// Heap bytes across all NIs (injection/delivery rings, assembly).
    pub nis_bytes: usize,
    /// Heap bytes of the packet-descriptor arena slab.
    pub arena_bytes: usize,
    /// Heap bytes of the event-calendar ring.
    pub calendar_bytes: usize,
    /// Sum of the component fields.
    pub total_bytes: usize,
    /// `routers_bytes` averaged over the router count.
    pub bytes_per_router: usize,
    /// Descriptors live right now.
    pub arena_live: usize,
    /// Peak concurrently-live descriptors (arena occupancy high water).
    pub arena_high_water: usize,
    /// Arena slab length (peak footprint in slots; never shrinks).
    pub arena_slots: usize,
}

/// A candidate *upward packet*: an input VC of an interposer router holding a
/// packet stalled while attempting to move up the vertical link (Sec. V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpwardCandidate {
    /// Input port of the stalled VC.
    pub in_port: Port,
    /// Flat VC index.
    pub vc_flat: usize,
    /// The stalled packet.
    pub packet: PacketId,
    /// Its VNet.
    pub vnet: VnetId,
    /// Destination router of the packet.
    pub dest: NodeId,
    /// True when the packet's head flit has already departed into the
    /// chiplet (wormhole partial transmission, Sec. V-B3).
    pub partly_transmitted: bool,
}

/// The simulated network.
///
/// Workloads enqueue packets with [`Network::try_send`]; schemes drive the
/// UPP/remote-control mechanisms through the `scheme API` methods; the
/// simulation loop alternates [`Network::begin_cycle`], scheme hooks, and
/// [`Network::finish_cycle`].
pub struct Network {
    cfg: NocConfig,
    topo: Topology,
    routing: Arc<dyn RouteComputer>,
    routers: Vec<Router>,
    nis: Vec<Ni>,
    cycle: Cycle,
    calendar: EventCalendar,
    /// Reusable staging buffer for `(arrival, event)` pairs emitted during a
    /// cycle phase; drained into the calendar at the end of each phase.
    emit_scratch: Vec<(Cycle, Event)>,
    stats: NetStats,
    tracker: PacketTracker,
    /// Interned per-packet descriptors; wire flits carry only a handle.
    /// Allocations and frees both happen on the serial path (injection-side
    /// `try_send`, ejection-side `NiFlitArrive` tail), so arena state is
    /// identical between the serial and sharded kernels.
    arena: PacketArena,
    tracer: Tracer,
    /// Protocol-state telemetry registry (disabled unless
    /// [`Network::enable_obs`] armed it).
    obs: ObsRegistry,
    /// Active-set scheduler: `finish_cycle` steps only routers/NIs whose
    /// flag is set. Flags are set ("woken") by event deliveries and by
    /// every externally-visible mutation, and cleared after a step that
    /// leaves the component with no pending work, so skipping is
    /// conservative: a skipped component is provably a no-op step.
    router_active: Vec<bool>,
    ni_active: Vec<bool>,
    /// Runtime toggle (also `UPP_ALWAYS_TICK=1` at construction): when
    /// false, every component is stepped every cycle and the clock never
    /// fast-forwards — the reference always-tick kernel.
    scheduler_enabled: bool,
    /// Cross-check mode (`cfg!(debug_assertions)` or
    /// `UPP_VERIFY_SCHEDULER=1`): asserts every skipped component truly had
    /// no pending work at the start of each `finish_cycle`.
    verify_scheduler: bool,
    /// Router steps actually executed (the numerator of
    /// [`Network::active_router_fraction`]).
    router_ticks: u64,
    /// Sharded parallel kernel state ([`Network::set_shards`]); `None`
    /// runs the serial kernel.
    shard_rt: Option<crate::shard::ShardRuntime>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("cycle", &self.cycle)
            .field("nodes", &self.routers.len())
            .field("in_flight", &self.tracker.in_flight())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds a network over `topo` with the given routing and consumption
    /// policy. `seed` drives the routers' VC-selection randomness.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`NocConfig::validate`].
    pub fn new(
        cfg: NocConfig,
        topo: Topology,
        routing: Arc<dyn RouteComputer>,
        consume: ConsumePolicy,
        seed: u64,
    ) -> Self {
        cfg.validate().expect("invalid NocConfig");
        let routers: Vec<Router> = topo
            .nodes()
            .iter()
            .map(|n| Router::new(n.id, &cfg, &topo, seed))
            .collect();
        let nis: Vec<Ni> = topo
            .nodes()
            .iter()
            .map(|n| Ni::new(n.id, &cfg, consume))
            .collect();
        let stats = NetStats::new(cfg.num_vnets);
        let calendar = EventCalendar::new(&cfg);
        let n = routers.len();
        // Pre-size the descriptor arena and the packet tracker to a
        // practical in-flight ceiling (every source can fill its injection
        // queues) so steady-state interning rarely — and below the ceiling
        // never — reallocates; both slabs still grow transparently past it,
        // always on the serial `try_send` path.
        let in_flight_bound = n * cfg.num_vnets * cfg.injection_queue_entries;
        let mut arena = PacketArena::new();
        arena.reserve(in_flight_bound);
        let mut tracker = PacketTracker::new();
        tracker.reserve(in_flight_bound);
        let scheduler_enabled = !std::env::var("UPP_ALWAYS_TICK").is_ok_and(|v| v == "1");
        let verify_scheduler =
            cfg!(debug_assertions) || std::env::var("UPP_VERIFY_SCHEDULER").is_ok_and(|v| v == "1");
        Self {
            cfg,
            topo,
            routing,
            routers,
            nis,
            cycle: 0,
            calendar,
            emit_scratch: Vec::new(),
            stats,
            tracker,
            arena,
            tracer: Tracer::disabled(),
            obs: ObsRegistry::disabled(),
            router_active: vec![true; n],
            ni_active: vec![true; n],
            scheduler_enabled,
            verify_scheduler,
            router_ticks: 0,
            shard_rt: None,
        }
    }

    /// Selects the spatially sharded parallel kernel with `shards` worker
    /// shards (1 restores the serial kernel). The request is clamped to the
    /// number of chiplets, ignored under `UPP_FORCE_SERIAL=1`, and falls
    /// back to serial when the topology cannot be partitioned along
    /// chiplet boundaries; returns the effective shard count.
    pub fn set_shards(&mut self, shards: usize) -> usize {
        self.set_shards_with_mailbox_capacity(shards, 0)
    }

    /// Like [`Network::set_shards`] but with an explicit per-segment
    /// mailbox capacity (`0` = sized automatically from the partition).
    /// Exceeding the capacity at runtime is a hard error, not silent
    /// reordering.
    pub fn set_shards_with_mailbox_capacity(&mut self, shards: usize, capacity: usize) -> usize {
        self.shard_rt = None;
        if shards <= 1 {
            return 1;
        }
        if crate::shard::force_serial() {
            eprintln!("warning: UPP_FORCE_SERIAL=1 set; ignoring --shards {shards}");
            return 1;
        }
        let chiplets = self.topo.chiplets().len();
        let effective = shards.min(chiplets.max(1));
        if effective < shards {
            eprintln!(
                "warning: clamping --shards {shards} to {effective} (one shard per chiplet max; \
                 topology has {chiplets} chiplets)"
            );
        }
        let Some(plan) = crate::shard::ShardPlan::build(&self.topo, effective) else {
            if effective > 1 {
                eprintln!(
                    "warning: topology is not partitionable along chiplet boundaries; \
                     running the serial kernel"
                );
            }
            return 1;
        };
        let capacity = if capacity == 0 {
            crate::shard::default_mailbox_capacity(&plan)
        } else {
            capacity
        };
        let rt = crate::shard::ShardRuntime::new(plan, capacity, self.cfg.num_vnets);
        let effective = rt.plan.shards();
        self.shard_rt = Some(rt);
        effective
    }

    /// The effective shard count (1 = serial kernel).
    pub fn shards(&self) -> usize {
        self.shard_rt.as_ref().map_or(1, |rt| rt.plan.shards())
    }

    /// The sharded kernel's pressure telemetry (`None` on the serial
    /// kernel). Inherently kernel-dependent, so no byte-pinned export
    /// includes it automatically — callers opt in (see `simulate`, which
    /// publishes it as `shard.*` obs gauges when telemetry is enabled).
    pub fn shard_telemetry(&self) -> Option<crate::shard::ShardTelemetry<'_>> {
        self.shard_rt
            .as_ref()
            .map(|rt| crate::shard::ShardTelemetry {
                shards: rt.plan.shards(),
                mailbox_capacity: rt.mailbox_capacity,
                mailbox_high_water: &rt.mailbox_high_water,
                merged_entries: &rt.merged_entries,
            })
    }

    /// Enables or disables the active-set scheduler at runtime. Disabling
    /// restores the always-tick reference kernel; re-enabling marks every
    /// component active (conservative) so no pending work can be missed.
    pub fn set_active_scheduler(&mut self, enabled: bool) {
        self.scheduler_enabled = enabled;
        if enabled {
            self.router_active.fill(true);
            self.ni_active.fill(true);
        }
    }

    /// True while the active-set scheduler is on.
    pub fn active_scheduler(&self) -> bool {
        self.scheduler_enabled
    }

    /// Fraction of `cycle x routers` slots in which a router was actually
    /// stepped since construction (1.0 for the always-tick kernel; what the
    /// scheduler skips shows up as the gap below 1.0).
    pub fn active_router_fraction(&self) -> f64 {
        let total = self.cycle as f64 * self.routers.len() as f64;
        if total == 0.0 {
            1.0
        } else {
            self.router_ticks as f64 / total
        }
    }

    /// The flight recorder (disabled unless [`Network::set_tracer`] armed
    /// one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access (schemes record popup spans through this).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Installs a tracer, returning the previous one (with whatever it
    /// recorded so far).
    pub fn set_tracer(&mut self, tracer: Tracer) -> Tracer {
        std::mem::replace(&mut self.tracer, tracer)
    }

    /// The telemetry registry (disabled unless [`Network::enable_obs`]
    /// armed it).
    pub fn obs(&self) -> &ObsRegistry {
        &self.obs
    }

    /// Mutable registry access (schemes register and record their metrics
    /// through this).
    pub fn obs_mut(&mut self) -> &mut ObsRegistry {
        &mut self.obs
    }

    /// Arms protocol-state telemetry: the registry starts recording and the
    /// substrate's mechanism metrics (circuit table, absorber) register
    /// themselves. Schemes register their own metrics lazily on their next
    /// hook invocation. Idempotent.
    pub fn enable_obs(&mut self) {
        self.obs.enable();
    }

    /// The configuration.
    pub fn cfg(&self) -> &NocConfig {
        &self.cfg
    }

    /// The topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// The route computer.
    pub fn routing(&self) -> &Arc<dyn RouteComputer> {
        &self.routing
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the measurement counters (end of warmup). In-flight packets
    /// keep their records so their latencies are attributed to the
    /// measurement window in which they finish.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::new(self.cfg.num_vnets);
    }

    /// Packets created but not yet fully ejected.
    pub fn in_flight(&self) -> usize {
        self.tracker.in_flight()
    }

    /// True when in-flight packets exist but nothing has moved for the
    /// watchdog threshold — the network is wedged (only possible without a
    /// deadlock-freedom scheme, or with a broken one).
    pub fn stalled(&self) -> bool {
        self.tracker
            .stalled(self.cycle, self.cfg.watchdog_threshold)
    }

    /// Cycle of the last observed flit movement.
    pub fn last_progress(&self) -> Cycle {
        self.tracker.last_progress()
    }

    /// Read access to one NI.
    pub fn ni(&self, node: NodeId) -> &Ni {
        &self.nis[node.index()]
    }

    /// Mutable access to one NI (workload-facing: popping delivered packets,
    /// permit management). Conservatively wakes the NI: the caller may
    /// mutate state the scheduler's wake points don't see.
    pub fn ni_mut(&mut self, node: NodeId) -> &mut Ni {
        self.ni_active[node.index()] = true;
        &mut self.nis[node.index()]
    }

    /// Read access to one router.
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// Mutable access to one router (scheme-facing mechanisms).
    /// Conservatively wakes the router: the caller may mutate state the
    /// scheduler's wake points don't see.
    pub fn router_mut(&mut self, node: NodeId) -> &mut Router {
        self.router_active[node.index()] = true;
        &mut self.routers[node.index()]
    }

    // ------------------------------------------------------------- workload

    /// Creates and enqueues a packet; returns its id, or `None` when the
    /// source injection queue is full.
    pub fn try_send(
        &mut self,
        src: NodeId,
        dest: NodeId,
        vnet: VnetId,
        len_flits: u16,
    ) -> Option<PacketId> {
        if !self.nis[src.index()].can_enqueue(vnet) {
            return None;
        }
        self.ni_active[src.index()] = true;
        let id = self.tracker.alloc_id();
        let pkt = Packet::new(id, src, dest, vnet, len_flits, self.cycle);
        let route = self.routing.plan(&self.topo, src, dest);
        let desc = self.arena.alloc(PacketDesc {
            id,
            src,
            vnet,
            pkt_len: len_flits,
            route,
            created_at: self.cycle,
        });
        self.tracker.on_created(
            desc,
            id,
            PacketRecord {
                src,
                dest,
                class: route.class,
                vnet,
                len_flits,
                created_at: self.cycle,
                injected_at: None,
                ejected_at: None,
            },
        );
        self.nis[src.index()]
            .enqueue(pkt, route, desc)
            .expect("can_enqueue checked");
        self.stats.packets_created += 1;
        if self.tracer.enabled() {
            self.tracer.record(TraceEvent::PacketCreated {
                at: self.cycle,
                packet: id,
                src,
                dest,
                vnet,
                len_flits,
            });
        }
        Some(id)
    }

    /// Route plan a packet from `src` to `dest` would take (for schemes that
    /// need to know boundary crossings before injection).
    pub fn plan_route(&self, src: NodeId, dest: NodeId) -> RouteInfo {
        self.routing.plan(&self.topo, src, dest)
    }

    // ----------------------------------------------------------- scheme API

    /// Sends a control message from `node` (enters that router's dedicated
    /// buffer, attends switch allocation from the next cycle).
    pub fn send_control(&mut self, node: NodeId, msg: ControlMsg) {
        let now = self.cycle;
        self.router_active[node.index()] = true;
        self.routers[node.index()].send_control(msg, now);
    }

    /// Drains control messages that terminated at `node`'s router (acks)
    /// into `out`. Appends without clearing; both buffers keep their
    /// capacity, so a caller-held scratch makes the drain allocation-free.
    pub fn drain_router_inbox(&mut self, node: NodeId, out: &mut Vec<DeliveredControl>) {
        self.routers[node.index()].drain_control_inbox_into(out);
    }

    /// Drains control messages delivered to `node`'s NI (reqs/stops) into
    /// `out` (same reusable-scratch contract as
    /// [`Network::drain_router_inbox`]).
    pub fn drain_ni_inbox(&mut self, node: NodeId, out: &mut Vec<DeliveredControl>) {
        self.nis[node.index()].drain_control_inbox_into(out);
    }

    /// Scans an interposer router for upward-stalled packets of `vnet`.
    pub fn upward_candidates(&self, node: NodeId, vnet: VnetId) -> Vec<UpwardCandidate> {
        let mut out = Vec::new();
        self.upward_candidates_into(node, vnet, &mut out);
        out
    }

    /// Like [`Network::upward_candidates`] but appending into a caller-held
    /// scratch (without clearing), so a per-scheme reusable buffer makes the
    /// per-cycle scan allocation-free.
    pub fn upward_candidates_into(
        &self,
        node: NodeId,
        vnet: VnetId,
        out: &mut Vec<UpwardCandidate>,
    ) {
        let r = &self.routers[node.index()];
        for (p, f) in r.input_vcs() {
            if !r.vnet_range(vnet).contains(&f) {
                continue;
            }
            let vc = r.input_vc(p, f);
            if vc.route_out != Some(Port::Up) {
                continue;
            }
            let Some(owner) = vc.owner else { continue };
            let Some(front) = r.vc_front(p, f) else {
                continue;
            };
            // Circuit keys are protocol state, legitimately read off any
            // flit of the worm (the head may already have departed).
            let dest = self.arena.desc(&front.flit).route.dest;
            out.push(UpwardCandidate {
                in_port: p,
                vc_flat: f,
                packet: owner,
                vnet,
                dest,
                partly_transmitted: r.vc_partly_transmitted(p, f),
            });
        }
    }

    /// Last cycle a flit of `vnet` left `node` through the `Up` port.
    pub fn up_last_sent(&self, node: NodeId, vnet: VnetId) -> Cycle {
        self.routers[node.index()].up_last_sent(vnet)
    }

    /// Pops one flit of an input VC up into the bypass path (popup
    /// transmission at the interposer router). Returns the flit if one was
    /// eligible.
    pub fn pop_upward_flit(&mut self, node: NodeId, in_port: Port, vc_flat: usize) -> Option<Flit> {
        self.pop_bypass_flit(node, in_port, vc_flat, Port::Up)
    }

    /// Pops one flit of an input VC into the bypass latch toward an explicit
    /// output port (chiplet-side popup start for partly-transmitted worms,
    /// Sec. V-B3). Returns the flit if one was eligible.
    pub fn pop_bypass_flit(
        &mut self,
        node: NodeId,
        in_port: Port,
        vc_flat: usize,
        out_port: Port,
    ) -> Option<Flit> {
        let Network {
            cfg,
            topo,
            routing,
            routers,
            nis,
            calendar,
            emit_scratch,
            stats,
            tracker,
            arena,
            tracer,
            obs,
            cycle,
            router_active,
            ..
        } = self;
        // The popped flit lands in the bypass latch; the router must be
        // stepped to forward it.
        router_active[node.index()] = true;
        let mut emit = std::mem::take(emit_scratch);
        let flit = {
            let mut ctx = RouterCtx {
                cfg,
                topo,
                routing: routing.as_ref(),
                now: *cycle,
                ni: &mut nis[node.index()],
                emit: &mut emit,
                stats,
                tracker,
                arena,
                tracer,
                obs,
                link_log: None,
            };
            routers[node.index()].pop_bypass_flit(&mut ctx, in_port, vc_flat, out_port)
        };
        for (at, ev) in emit.drain(..) {
            calendar.push(*cycle, at, ev);
        }
        *emit_scratch = emit;
        flit
    }

    /// Number of flits waiting in a router's bypass latch.
    pub fn bypass_pending(&self, node: NodeId) -> usize {
        self.routers[node.index()].bypass_pending()
    }

    /// NI-side ejection-entry reservation (UPP_req handling).
    pub fn try_reserve_ejection(&mut self, node: NodeId, vnet: VnetId) -> bool {
        self.ni_active[node.index()] = true;
        self.nis[node.index()].try_reserve_entry(vnet)
    }

    /// Releases an NI ejection reservation (UPP_stop handling).
    pub fn release_ejection_reservation(&mut self, node: NodeId, vnet: VnetId) {
        self.ni_active[node.index()] = true;
        self.nis[node.index()].release_reservation(vnet);
    }

    /// Sets an injection permit on a pending packet (remote control).
    pub fn set_injection_permit(&mut self, node: NodeId, id: PacketId, state: PermitState) -> bool {
        self.ni_active[node.index()] = true;
        self.nis[node.index()].set_permit(id, state)
    }

    /// A per-node snapshot of buffered flits (router VC occupancy), useful
    /// for diagnosing where a deadlock chain sits.
    pub fn occupancy(&self) -> Vec<(NodeId, usize)> {
        self.routers
            .iter()
            .map(|r| {
                let n = r.node();
                let flits: usize = r.input_vcs().map(|(p, f)| r.vc_buf_len(p, f)).sum();
                (n, flits)
            })
            .collect()
    }

    /// Measures the exact heap footprint of the simulation state by walking
    /// routers, NIs, the descriptor arena and the event calendar (see
    /// [`MemReport`] for what is — deliberately — excluded).
    pub fn mem_report(&self) -> MemReport {
        let routers_bytes: usize = self.routers.iter().map(|r| r.mem_bytes()).sum();
        let nis_bytes: usize = self.nis.iter().map(|ni| ni.mem_bytes()).sum();
        let arena_bytes = self.arena.mem_bytes();
        let calendar_bytes = self.calendar.mem_bytes();
        MemReport {
            routers_bytes,
            nis_bytes,
            arena_bytes,
            calendar_bytes,
            total_bytes: routers_bytes + nis_bytes + arena_bytes + calendar_bytes,
            bytes_per_router: routers_bytes / self.routers.len().max(1),
            arena_live: self.arena.live_count(),
            arena_high_water: self.arena.high_water(),
            arena_slots: self.arena.slots_len(),
        }
    }

    /// Assembles a deadlock-forensics report for the current network state:
    /// every in-flight packet with the input VCs it holds, what each held VC
    /// waits on, and one circular wait over physical channels (extracted by
    /// running [`GlobalCdg::find_cycle`] on the runtime hold/wait graph).
    /// Meaningful any time, but intended for when [`Network::stalled`]
    /// trips.
    pub fn stall_report(&self) -> StallReport {
        let mut wedged: Vec<WedgedPacket> = self
            .tracker
            .live_packets()
            .map(|(id, rec)| WedgedPacket {
                id,
                src: rec.src,
                dest: rec.dest,
                vnet: rec.vnet,
                len_flits: rec.len_flits,
                age: self.cycle.saturating_sub(rec.created_at),
                injected: rec.injected_at.is_some(),
                holds: Vec::new(),
            })
            .collect();
        wedged.sort_by_key(|w| w.id);

        let mut edges: Vec<(GlobalChannel, GlobalChannel)> = Vec::new();
        for w in &mut wedged {
            for r in &self.routers {
                let node = r.node();
                for (p, f) in r.input_vcs() {
                    let vc = r.input_vc(p, f);
                    if vc.owner != Some(w.id) {
                        continue;
                    }
                    let waits_out = vc.route_out;
                    let waits_node = waits_out
                        .filter(|&out| out != Port::Local)
                        .and_then(|out| self.topo.neighbor(node, out));
                    w.holds.push(VcHold {
                        node,
                        in_port: p,
                        vc_flat: f,
                        buffered: r.vc_buf_len(p, f),
                        head_of_line: r.vc_front(p, f).is_some_and(|b| b.flit.kind.is_head()),
                        waits_out,
                        waits_node,
                    });
                    // Wait-for edge: the channel whose downstream buffer the
                    // flits occupy depends on the channel the packet needs
                    // next. Locally-injected flits hold no inter-router
                    // channel; ejecting packets wait on none.
                    if r.vc_buf_is_empty(p, f) || p == Port::Local {
                        continue;
                    }
                    let (Some(out), Some(upstream)) = (waits_out, self.topo.neighbor(node, p))
                    else {
                        continue;
                    };
                    if out == Port::Local {
                        continue;
                    }
                    edges.push((
                        GlobalChannel {
                            from: upstream,
                            out: p.opposite(),
                        },
                        GlobalChannel { from: node, out },
                    ));
                }
            }
        }
        let wait_cycle = GlobalCdg::from_edges(&edges)
            .find_cycle()
            .unwrap_or_default();
        StallReport {
            cycle: self.cycle,
            last_progress: self.last_progress(),
            in_flight: self.in_flight(),
            wedged,
            wait_cycle,
            occupancy: self.occupancy(),
        }
    }

    // --------------------------------------------------------- dynamic faults

    /// Fails the bidirectional link leaving `node` through `port` *mid-run*
    /// (fail-stop: staged flits/credits still deliver, new traversals are
    /// gated; see [`crate::fault`] for the full semantics).
    ///
    /// # Panics
    ///
    /// Panics if no physical link exists there.
    pub fn inject_link_fault(&mut self, node: NodeId, port: Port) {
        self.topo.set_link_faulty(node, port);
    }

    /// Heals a link previously failed with [`Network::inject_link_fault`]
    /// (or at build time). Traffic blocked at the link resumes from the next
    /// cycle; credit state survived the outage, so no flit is lost.
    pub fn heal_link_fault(&mut self, node: NodeId, port: Port) {
        self.topo.clear_link_fault(node, port);
    }

    /// Pauses or resumes NI injection at `node` (endpoint throttling).
    pub fn set_injection_paused(&mut self, node: NodeId, paused: bool) {
        // Unpausing can surface a backlog the scheduler stopped watching.
        self.ni_active[node.index()] = true;
        self.nis[node.index()].set_injection_paused(paused);
    }

    /// Pauses or resumes PE consumption at `node` (endpoint throttling).
    pub fn set_consumption_paused(&mut self, node: NodeId, paused: bool) {
        self.ni_active[node.index()] = true;
        self.nis[node.index()].set_consumption_paused(paused);
    }

    // ------------------------------------------------------- reconfiguration

    /// Dynamically reconfigures the topology (fault injection, power gating)
    /// and installs new routing — the network-flexibility scenario of
    /// Sec. VI-B that UPP supports and the baselines do not.
    ///
    /// The network must be drained: in-flight route headers reference the
    /// old topology.
    ///
    /// # Errors
    ///
    /// Returns `Err` when packets are still in flight or the mutated
    /// topology fails validation (the mutation is kept; callers decide how
    /// to repair).
    pub fn reconfigure<F>(
        &mut self,
        mutate: F,
        routing: Arc<dyn RouteComputer>,
    ) -> Result<(), String>
    where
        F: FnOnce(&mut Topology),
    {
        if self.in_flight() > 0 {
            return Err(format!(
                "cannot reconfigure with {} packets in flight",
                self.in_flight()
            ));
        }
        mutate(&mut self.topo);
        self.topo.validate()?;
        self.routing = routing;
        Ok(())
    }

    // ------------------------------------------------------------ the clock

    /// Phase 1 of a cycle: delivers everything scheduled to arrive now.
    /// Schemes observe post-arrival state in their `pre_cycle` hook.
    pub fn begin_cycle(&mut self) {
        if self.shard_rt.is_some() {
            self.begin_cycle_sharded();
            return;
        }
        let mut events = self.calendar.take(self.cycle);
        let Network {
            cfg,
            topo,
            routing,
            routers,
            nis,
            stats,
            tracker,
            arena,
            tracer,
            obs,
            cycle,
            calendar,
            emit_scratch,
            router_active,
            ni_active,
            ..
        } = self;
        let mut emit = std::mem::take(emit_scratch);
        for ev in events.drain(..) {
            // Every delivery wakes its target component so `finish_cycle`
            // steps it this cycle (see `Event::wake_target`).
            match ev.wake_target() {
                crate::event::WakeTarget::Router(n) => router_active[n.index()] = true,
                crate::event::WakeTarget::Ni(n) => ni_active[n.index()] = true,
            }
            match ev {
                Event::FlitArrive {
                    node,
                    in_port,
                    vc_flat,
                    flit,
                } => {
                    let mut ctx = RouterCtx {
                        cfg,
                        topo,
                        routing: routing.as_ref(),
                        now: *cycle,
                        ni: &mut nis[node.index()],
                        emit: &mut emit,
                        stats,
                        tracker,
                        arena,
                        tracer,
                        obs,
                        link_log: None,
                    };
                    routers[node.index()].deliver_flit(&mut ctx, in_port, vc_flat, flit);
                }
                Event::CreditArrive {
                    node,
                    out_port,
                    vc_flat,
                    is_free,
                } => {
                    routers[node.index()].deliver_credit(out_port, vc_flat, is_free);
                }
                Event::NiCreditArrive {
                    node,
                    vc_flat,
                    is_free,
                } => {
                    nis[node.index()].on_credit(vc_flat, is_free);
                }
                Event::NiFlitArrive { node, flit } => {
                    stats.flits_ejected += 1;
                    tracker.touch(*cycle);
                    let done = nis[node.index()].accept_flit(flit, *cycle, flit.upward, arena);
                    if let Some(d) = done {
                        if let Some(rec) = tracker.on_ejected(flit.desc, *cycle) {
                            stats.record_ejection(&rec, *cycle);
                            if tracer.enabled() {
                                let injected = rec.injected_at.unwrap_or(rec.created_at);
                                tracer.record(TraceEvent::PacketEjected {
                                    at: *cycle,
                                    packet: d.pkt.id,
                                    node,
                                    net_latency: cycle.saturating_sub(injected),
                                    total_latency: cycle.saturating_sub(rec.created_at),
                                });
                            }
                        }
                        // The tail has ejected: the descriptor dies here, on
                        // the serial path in both kernels.
                        arena.free(flit.desc);
                    }
                }
                Event::ControlArrive { node, in_port, msg } => {
                    routers[node.index()].deliver_control(in_port, msg, *cycle);
                }
                Event::NiControlArrive { node, in_port, msg } => {
                    nis[node.index()].deliver_control(DeliveredControl {
                        msg,
                        in_port,
                        at: *cycle,
                    });
                }
            }
        }
        for (at, ev) in emit.drain(..) {
            calendar.push(*cycle, at, ev);
        }
        *emit_scratch = emit;
        calendar.recycle(*cycle, events);
    }

    /// Phase 2 of a cycle: NI injection, router allocation/commit, PE
    /// consumption; then the clock advances.
    pub fn finish_cycle(&mut self) {
        if self.shard_rt.is_some() {
            self.finish_cycle_sharded();
            return;
        }
        let Network {
            cfg,
            topo,
            routing,
            routers,
            nis,
            stats,
            tracker,
            arena,
            tracer,
            obs,
            cycle,
            calendar,
            emit_scratch,
            router_active,
            ni_active,
            scheduler_enabled,
            verify_scheduler,
            router_ticks,
            ..
        } = self;
        let sched = *scheduler_enabled;
        let mut emit = std::mem::take(emit_scratch);
        let now = *cycle;

        // Cross-check: every component the scheduler is about to skip must
        // truly have nothing to do. On by default in debug builds; opt in
        // with UPP_VERIFY_SCHEDULER=1 for release-mode verification runs.
        if sched && *verify_scheduler {
            for (i, r) in routers.iter().enumerate() {
                assert!(
                    router_active[i] || !r.has_pending_work(),
                    "active-set scheduler would skip router {} with pending work at cycle {now}",
                    r.node()
                );
            }
            for (i, ni) in nis.iter().enumerate() {
                assert!(
                    ni_active[i] || !ni.has_pending_work(),
                    "active-set scheduler would skip NI {} with pending work at cycle {now}",
                    ni.node()
                );
            }
        }

        // NI injection: one flit per NI per cycle onto the Local input port.
        // Iteration stays in ascending node order (with inactive NIs
        // skipped) so the calendar receives events in exactly the order the
        // always-tick kernel produced — byte-identical results.
        let vct = cfg.flow_control == crate::config::FlowControl::VirtualCutThrough;
        for (i, ni) in nis.iter_mut().enumerate() {
            if sched && !ni_active[i] {
                continue;
            }
            if let Some((flit, vc_flat)) = ni.inject_step(now, cfg.vcs_per_vnet, vct) {
                if flit.kind.is_head() {
                    tracker.on_injected(flit.desc, now);
                    stats.packets_injected += 1;
                    if tracer.enabled() {
                        tracer.record(TraceEvent::PacketInjected {
                            at: now,
                            packet: arena.get(flit.desc).id,
                            node: ni.node(),
                        });
                    }
                }
                stats.flits_injected += 1;
                tracker.touch(now);
                emit.push((
                    now + cfg.link_latency,
                    Event::FlitArrive {
                        node: ni.node(),
                        in_port: Port::Local,
                        vc_flat,
                        flit,
                    },
                ));
            }
        }

        // Routers: bypass, control, switch allocation (ascending order,
        // inactive routers skipped; an idle router's step is provably a
        // no-op — no RNG draw, no arbiter update, no trace event).
        for i in 0..routers.len() {
            if sched && !router_active[i] {
                continue;
            }
            *router_ticks += 1;
            let mut ctx = RouterCtx {
                cfg,
                topo,
                routing: routing.as_ref(),
                now,
                ni: &mut nis[i],
                emit: &mut emit,
                stats,
                tracker,
                arena,
                tracer,
                obs,
                link_log: None,
            };
            routers[i].step(&mut ctx);
            if sched && !routers[i].has_pending_work() {
                router_active[i] = false;
            }
        }

        // PE consumption (Immediate policy), then NI deactivation — decided
        // only here so injection-side work observed above is not forgotten.
        for (i, ni) in nis.iter_mut().enumerate() {
            if sched && !ni_active[i] {
                continue;
            }
            ni.consume_step(now);
            if sched && !ni.has_pending_work() {
                ni_active[i] = false;
            }
        }

        for (at, ev) in emit.drain(..) {
            calendar.push(now, at, ev);
        }
        *emit_scratch = emit;
        *cycle += 1;
    }

    /// Sharded variant of [`Network::begin_cycle`]. A serial pre-pass in
    /// slot order sets every wake flag and performs the ejections
    /// (`NiFlitArrive` is the only delivery with global side effects:
    /// stats, the progress tracker and the trace stream), routing every
    /// other event to its owning shard; the worker pool then delivers the
    /// per-shard queues in parallel. Parallel deliveries mutate only their
    /// target component plus commutative shadow-telemetry counters and
    /// touch state disjoint from the ejection path (`Ni::accept_flit`
    /// never shares fields with `Ni::on_credit`/`Ni::deliver_control`,
    /// and router deliveries never reach the NI), so the reordering is
    /// unobservable and the outcome byte-identical to the serial kernel.
    fn begin_cycle_sharded(&mut self) {
        let mut rt = self.shard_rt.take().expect("sharded dispatch");
        rt.arm(self.tracer.enabled(), self.obs.is_enabled());
        let now = self.cycle;
        let mut events = self.calendar.take(now);
        let mut any_pending = false;
        for ev in events.drain(..) {
            match ev.wake_target() {
                crate::event::WakeTarget::Router(n) => self.router_active[n.index()] = true,
                crate::event::WakeTarget::Ni(n) => self.ni_active[n.index()] = true,
            }
            match ev {
                Event::NiFlitArrive { node, flit } => {
                    self.stats.flits_ejected += 1;
                    self.tracker.touch(now);
                    let done =
                        self.nis[node.index()].accept_flit(flit, now, flit.upward, &self.arena);
                    if let Some(d) = done {
                        if let Some(rec) = self.tracker.on_ejected(flit.desc, now) {
                            self.stats.record_ejection(&rec, now);
                            if self.tracer.enabled() {
                                let injected = rec.injected_at.unwrap_or(rec.created_at);
                                self.tracer.record(TraceEvent::PacketEjected {
                                    at: now,
                                    packet: d.pkt.id,
                                    node,
                                    net_latency: now.saturating_sub(injected),
                                    total_latency: now.saturating_sub(rec.created_at),
                                });
                            }
                        }
                        // Descriptor death stays on the serial pre-pass, so
                        // arena state matches the serial kernel exactly.
                        self.arena.free(flit.desc);
                    }
                }
                ev => {
                    let target = match ev.wake_target() {
                        crate::event::WakeTarget::Router(n) => n,
                        crate::event::WakeTarget::Ni(n) => n,
                    };
                    rt.scratch[rt.plan.shard_of(target)].pending.push(ev);
                    any_pending = true;
                }
            }
        }
        self.calendar.recycle(now, events);

        if any_pending {
            self.run_sharded_phase(&mut rt, false);
            for scratch in rt.scratch.iter_mut() {
                // Deliveries stage no events and record no traces (checked
                // in debug builds; drained defensively in release so a
                // future delivery-path emit degrades to wrong-order instead
                // of silent loss).
                debug_assert!(
                    scratch.begin_emit.is_empty(),
                    "begin-phase delivery emitted an event"
                );
                for (at, ev) in scratch.begin_emit.drain(..) {
                    self.calendar.push(now, at, ev);
                }
                for ev in scratch.begin_trace.drain_captured() {
                    self.tracer.record(ev);
                }
                self.stats
                    .absorb_shard_delta(&mut scratch.stats, &scratch.link_touch);
                scratch.link_touch.clear();
                self.obs.absorb_shard_delta(&mut scratch.obs);
                self.tracker.touch(scratch.tracker.last_progress());
            }
        }
        self.shard_rt = Some(rt);
    }

    /// Sharded variant of [`Network::finish_cycle`]: the worker pool runs
    /// inject/route/consume over each shard's node ranges with every
    /// global side effect staged into shard-local mailboxes, then the main
    /// thread drains the mailboxes phase-major (inject, then route),
    /// range-major (chiplet layer, then interposer layer), shard-minor —
    /// which is exactly the serial kernel's ascending-node iteration, so
    /// the calendar, trace and tracker streams are byte-identical.
    fn finish_cycle_sharded(&mut self) {
        let mut rt = self.shard_rt.take().expect("sharded dispatch");
        let now = self.cycle;
        // Scheduler cross-check stays serial (read-only over all shards).
        if self.scheduler_enabled && self.verify_scheduler {
            for (i, r) in self.routers.iter().enumerate() {
                assert!(
                    self.router_active[i] || !r.has_pending_work(),
                    "active-set scheduler would skip router {} with pending work at cycle {now}",
                    r.node()
                );
            }
            for (i, ni) in self.nis.iter().enumerate() {
                assert!(
                    self.ni_active[i] || !ni.has_pending_work(),
                    "active-set scheduler would skip NI {} with pending work at cycle {now}",
                    ni.node()
                );
            }
        }
        rt.arm(self.tracer.enabled(), self.obs.is_enabled());
        self.run_sharded_phase(&mut rt, true);

        for phase in 0..2 {
            for range in 0..2 {
                for (s, scratch) in rt.scratch.iter_mut().enumerate() {
                    let seg = &mut scratch.segs[phase][range];
                    // Mailbox-pressure telemetry (cheap max/add on the
                    // merge path): how close each shard's event mailbox
                    // came to its capacity, and how much it merged.
                    rt.mailbox_high_water[s] = rt.mailbox_high_water[s].max(seg.emit.len());
                    rt.merged_entries[s] += (seg.emit.len() + seg.injected.len()) as u64;
                    for desc in seg.injected.drain(..) {
                        self.tracker.on_injected(desc, now);
                    }
                    let mut captured = seg.trace.drain_captured();
                    rt.merged_entries[s] += captured.len() as u64;
                    for ev in captured.drain(..) {
                        self.tracer.record(ev);
                    }
                    seg.trace.recycle_captured(captured);
                    for (at, ev) in seg.emit.drain(..) {
                        self.calendar.push(now, at, ev);
                    }
                }
            }
        }
        for scratch in rt.scratch.iter_mut() {
            self.stats
                .absorb_shard_delta(&mut scratch.stats, &scratch.link_touch);
            scratch.link_touch.clear();
            self.obs.absorb_shard_delta(&mut scratch.obs);
            self.tracker.touch(scratch.tracker.last_progress());
            self.router_ticks += std::mem::take(&mut scratch.router_ticks);
        }
        self.shard_rt = Some(rt);
        self.cycle += 1;
    }

    /// Fans one compute phase out over the worker pool: splits the
    /// component arrays along the shard plan (on the dispatch recursion's
    /// stack — no allocation) and joins. `finish` selects the finish-phase
    /// body (inject/route/consume) over the begin-phase body (event
    /// delivery).
    fn run_sharded_phase(&mut self, rt: &mut crate::shard::ShardRuntime, finish: bool) {
        let interposer_base = rt.plan.interposer_base;
        let (rc, ri) = self.routers.split_at_mut(interposer_base);
        let (nc, nii) = self.nis.split_at_mut(interposer_base);
        let (rac, rai) = self.router_active.split_at_mut(interposer_base);
        let (nac, nai) = self.ni_active.split_at_mut(interposer_base);
        let env = crate::shard::PhaseEnv {
            plan: &rt.plan,
            cfg: &self.cfg,
            topo: &self.topo,
            routing: self.routing.as_ref(),
            arena: &self.arena,
            now: self.cycle,
            sched: self.scheduler_enabled,
            finish,
            mailbox_capacity: rt.mailbox_capacity,
        };
        let rests = crate::shard::Rests {
            routers: [rc, ri],
            nis: [nc, nii],
            router_active: [rac, rai],
            ni_active: [nac, nai],
            scratch: &mut rt.scratch,
        };
        crate::shard::run_phase(&rt.pool, &env, rests);
    }

    /// True when no router and no NI is scheduled for the next
    /// `finish_cycle` — all remaining state (if any) sits in the calendar.
    pub fn is_quiescent(&self) -> bool {
        self.router_active.iter().all(|a| !a) && self.ni_active.iter().all(|a| !a)
    }

    /// The cycle the clock can fast-forward to, when the network is
    /// quiescent and the next staged event is strictly in the future.
    /// `None` when anything is active, the calendar is empty, the
    /// scheduler is disabled, or the jump would blur the watchdog (see
    /// [`PacketTracker::advance_to`]).
    pub fn fast_forward_target(&self) -> Option<Cycle> {
        if !self.scheduler_enabled || !self.is_quiescent() {
            return None;
        }
        let target = self.calendar.next_occupied_cycle(self.cycle)?;
        if target <= self.cycle {
            return None;
        }
        if !self.tracker.advance_to(target, self.cfg.watchdog_threshold) {
            return None;
        }
        Some(target)
    }

    /// Fast-forwards the clock to `target` (a value returned by
    /// [`Network::fast_forward_target`]). Every skipped cycle is provably a
    /// no-op: nothing is scheduled, so `begin_cycle` would deliver nothing
    /// and `finish_cycle` would step nothing. The caller must have given
    /// the scheme's `advance_to` hook a veto first.
    pub fn advance_to(&mut self, target: Cycle) {
        debug_assert!(self.scheduler_enabled, "fast-forward with scheduler off");
        debug_assert!(self.is_quiescent(), "fast-forward past scheduled work");
        debug_assert_eq!(
            self.calendar.next_occupied_cycle(self.cycle),
            Some(target),
            "fast-forward target must be the next staged event"
        );
        self.cycle = target;
    }

    /// Runs a full cycle with no scheme hooks.
    pub fn step(&mut self) {
        self.begin_cycle();
        self.finish_cycle();
    }

    /// Convenience: pops the oldest delivered packet at an NI.
    pub fn pop_delivered(&mut self, node: NodeId, vnet: VnetId) -> Option<Delivered> {
        self.nis[node.index()].pop_delivered(vnet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ni::ConsumePolicy;
    use crate::routing::ChipletRouting;
    use crate::topology::ChipletSystemSpec;

    fn net() -> Network {
        let topo = ChipletSystemSpec::baseline().build(0).unwrap();
        Network::new(
            NocConfig::default(),
            topo,
            Arc::new(ChipletRouting::xy()),
            ConsumePolicy::Immediate { latency: 1 },
            42,
        )
    }

    fn run_until_drained(net: &mut Network, max_cycles: u64) {
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step();
            guard += 1;
            assert!(
                guard < max_cycles,
                "packets did not drain within {max_cycles} cycles"
            );
        }
    }

    #[test]
    fn single_intra_chiplet_packet_arrives() {
        let mut net = net();
        let c = &net.topo().chiplets()[0];
        let (src, dest) = (c.routers[0], c.routers[15]);
        let id = net.try_send(src, dest, VnetId(0), 5).unwrap();
        run_until_drained(&mut net, 200);
        assert_eq!(net.stats().packets_ejected, 1);
        assert_eq!(net.stats().flits_ejected, 5);
        assert!(net.stats().avg_net_latency() > 0.0);
        let _ = id;
    }

    #[test]
    fn single_inter_chiplet_packet_arrives() {
        let mut net = net();
        let src = net.topo().chiplets()[0].routers[0];
        let dest = net.topo().chiplets()[3].routers[15];
        net.try_send(src, dest, VnetId(2), 5).unwrap();
        run_until_drained(&mut net, 400);
        assert_eq!(net.stats().packets_ejected, 1);
    }

    #[test]
    fn zero_load_latency_matches_pipeline_model() {
        // One-flit packet over a single hop: inject (1 cycle link) + BW ->
        // SA (1) -> ST (1) -> LT (1) per hop + final NI link.
        let mut net = net();
        let c = &net.topo().chiplets()[0];
        let (src, dest) = (c.routers[0], c.routers[1]);
        net.try_send(src, dest, VnetId(0), 1).unwrap();
        run_until_drained(&mut net, 100);
        // 2 routers, each 3 cycles (BW->SA->ST) + 1 cycle link after each +
        // injection link 1: measured as a small constant; assert a tight
        // window so pipeline regressions are caught.
        let lat = net.stats().avg_net_latency();
        assert!(
            (4.0..=12.0).contains(&lat),
            "unexpected zero-load latency {lat}"
        );
    }

    #[test]
    fn many_packets_all_drain_without_scheme_at_low_load() {
        let mut net = net();
        let nodes: Vec<NodeId> = net.topo().nodes().iter().map(|n| n.id).collect();
        let mut sent = 0;
        for (i, &s) in nodes.iter().enumerate() {
            let d = nodes[(i * 13 + 7) % nodes.len()];
            if s == d {
                continue;
            }
            if net
                .try_send(s, d, VnetId((i % 3) as u8), if i % 3 == 2 { 5 } else { 1 })
                .is_some()
            {
                sent += 1;
            }
        }
        run_until_drained(&mut net, 2_000);
        assert_eq!(net.stats().packets_ejected, sent);
        assert!(!net.stalled());
    }

    #[test]
    fn wormhole_keeps_flit_order() {
        // Flood one destination from many sources; NI assembly asserts
        // per-packet ordering internally (debug_assert), so simply running
        // in a debug test exercises the invariant.
        let mut net = net();
        let routers = net.topo().chiplets()[1].routers.clone();
        let dest = routers[5];
        for (i, &s) in routers.iter().enumerate() {
            if s == dest {
                continue;
            }
            net.try_send(s, dest, VnetId((i % 3) as u8), 5);
        }
        run_until_drained(&mut net, 5_000);
        assert!(net.stats().packets_ejected >= 10);
    }

    #[test]
    fn injection_queue_full_rejects() {
        let mut net = net();
        let c = &net.topo().chiplets()[0];
        let (src, dest) = (c.routers[0], c.routers[1]);
        let mut accepted = 0;
        for _ in 0..64 {
            if net.try_send(src, dest, VnetId(0), 5).is_some() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, net.cfg().injection_queue_entries as u64);
    }

    #[test]
    fn stats_reset_keeps_in_flight_packets() {
        let mut net = net();
        let c = &net.topo().chiplets()[0];
        net.try_send(c.routers[0], c.routers[15], VnetId(0), 5)
            .unwrap();
        for _ in 0..3 {
            net.step();
        }
        net.reset_stats();
        run_until_drained(&mut net, 300);
        assert_eq!(
            net.stats().packets_ejected,
            1,
            "latency attributed to new window"
        );
    }

    #[test]
    fn set_shards_clamps_to_chiplet_count() {
        let mut net = net();
        let chiplets = net.topo().chiplets().len();
        assert_eq!(net.set_shards(64), chiplets, "over-request clamps");
        assert_eq!(net.shards(), chiplets);
        assert_eq!(net.set_shards(1), 1, "1 restores the serial kernel");
        assert_eq!(net.shards(), 1);
    }

    #[test]
    fn set_shards_degrades_to_serial_on_single_chiplet_mesh() {
        let topo = crate::topology::ChipletSystemSpec::grid(1, 1)
            .unwrap()
            .build(0)
            .unwrap();
        let mut net = Network::new(
            NocConfig::default(),
            topo,
            Arc::new(ChipletRouting::xy()),
            ConsumePolicy::Immediate { latency: 1 },
            42,
        );
        assert_eq!(net.set_shards(4), 1, "single chiplet cannot be sharded");
        assert_eq!(net.shards(), 1);
        // The degraded network still simulates.
        let c = &net.topo().chiplets()[0];
        let (src, dest) = (c.routers[0], c.routers[15]);
        net.try_send(src, dest, VnetId(0), 5).unwrap();
        run_until_drained(&mut net, 300);
        assert_eq!(net.stats().packets_ejected, 1);
    }

    #[test]
    fn sharded_kernel_matches_serial_exactly() {
        let run = |shards: usize| -> (u64, String) {
            let mut net = net();
            if shards > 1 {
                assert_eq!(net.set_shards(shards), shards);
            }
            let nodes: Vec<NodeId> = net.topo().nodes().iter().map(|n| n.id).collect();
            for (i, &s) in nodes.iter().enumerate() {
                let d = nodes[(i * 7 + 13) % nodes.len()];
                if s != d {
                    net.try_send(s, d, VnetId((i % 3) as u8), 1 + (i % 5) as u16);
                }
            }
            run_until_drained(&mut net, 5_000);
            let stats = serde_json::to_string(net.stats()).expect("serializable");
            (net.cycle(), stats)
        };
        let serial = run(1);
        for shards in [2, 4] {
            let sharded = run(shards);
            assert_eq!(serial.0, sharded.0, "cycle diverged at {shards} shards");
            assert_eq!(serial.1, sharded.1, "stats diverged at {shards} shards");
        }
    }

    #[test]
    #[should_panic(expected = "shard mailbox overflow")]
    fn mailbox_overflow_is_a_hard_error() {
        let mut net = net();
        assert_eq!(net.set_shards_with_mailbox_capacity(2, 1), 2);
        let c = &net.topo().chiplets()[0];
        // A single multi-flit packet overflows a capacity-1 mailbox as soon
        // as a router forwards a flit (flit event + credit event).
        net.try_send(c.routers[0], c.routers[15], VnetId(0), 5)
            .unwrap();
        for _ in 0..50 {
            net.step();
        }
    }
}
