//! # upp-core — Upward Packet Popup
//!
//! The paper's contribution: a deadlock *recovery* framework for modular
//! chiplet-based systems. The key insight (Sec. IV-A) is that every
//! integration-induced deadlock contains an **upward packet** — a packet
//! permanently stalled in an interposer router while attempting to ascend a
//! vertical link into a chiplet. Detecting that packet (timeout counters on
//! the `Up` ports) and *popping it up* to its destination (ejection-entry
//! reservation + buffer-bypass circuit transmission) breaks the dependency
//! cycle without any turn restrictions, extra VCs, injection control, or
//! global topology knowledge — preserving chiplet design modularity.
//!
//! * [`signal`] — the compact `UPP_req`/`UPP_ack`/`UPP_stop` encodings of
//!   Fig. 4;
//! * [`detect`] — timeout counters and the round-robin upward-packet
//!   arbiter of Sec. V-A;
//! * [`protocol`] — the shared protocol definitions (detection threshold,
//!   signal gap, stage set and legal stage transitions) consumed by both
//!   the concrete scheme and the `upp-check` model checker;
//! * [`scheme`] — the full recovery state machine of Secs. V-B/V-C,
//!   including wormhole partial-transmission handling (Sec. V-B3), false-
//!   positive stops, and the serialised signal units of Sec. V-B5.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use upp_core::{Upp, UppConfig};
//! use upp_noc::config::NocConfig;
//! use upp_noc::ids::VnetId;
//! use upp_noc::network::Network;
//! use upp_noc::ni::ConsumePolicy;
//! use upp_noc::routing::ChipletRouting;
//! use upp_noc::sim::System;
//! use upp_noc::topology::ChipletSystemSpec;
//!
//! let topo = ChipletSystemSpec::baseline().build(0).expect("valid spec");
//! let net = Network::new(
//!     NocConfig::default(),
//!     topo,
//!     Arc::new(ChipletRouting::xy()),
//!     ConsumePolicy::Immediate { latency: 1 },
//!     7,
//! );
//! let upp = Upp::new(UppConfig::default());
//! let stats = upp.stats_handle();
//! let mut sys = System::new(net, Box::new(upp));
//! let src = sys.net().topo().chiplets()[0].routers[0];
//! let dest = sys.net().topo().chiplets()[2].routers[9];
//! sys.send(src, dest, VnetId(0), 5);
//! sys.run(500);
//! assert_eq!(sys.net().stats().packets_ejected, 1);
//! assert_eq!(stats.lock().unwrap().upward_packets, 0); // no deadlock here
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod detect;
pub mod protocol;
pub mod scheme;
pub mod signal;

pub use protocol::PopupStage;
pub use scheme::{Upp, UppConfig, UppStats, UppStatsHandle};
pub use signal::{SignalCodecError, UppSignal};
